package tablecheck

import (
	"testing"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

func freshProduct(t *testing.T) *core.ProductDFA {
	t.Helper()
	abc := paperfigs.GammaABC()
	var members []*core.TagDFA
	for _, expr := range []string{"a.*b", ".*a", "a.*c"} {
		l, err := rex.CompileString(expr, abc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.RegisterlessQL(classify.Analyze(l))
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, m)
	}
	p, err := core.NewProductDFA(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCorruptProduct(t *testing.T) {
	k := paperfigs.GammaABC().Size()

	t.Run("closure", func(t *testing.T) {
		p := freshProduct(t)
		tab, _, _, _, _, dead := p.CompiledProduct()
		tab[0] = dead + 5
		ds, err := Verify("p", p, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindClosure)
	})
	t.Run("flags-dead-row", func(t *testing.T) {
		p := freshProduct(t)
		tab, _, _, stride, _, dead := p.CompiledProduct()
		tab[int(dead)*int(stride)] = 0
		ds, err := Verify("p", p, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-dead-accepts", func(t *testing.T) {
		p := freshProduct(t)
		_, masks, _, _, words, dead := p.CompiledProduct()
		masks[int(dead)*int(words)] |= 1
		ds, err := Verify("p", p, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-stray-bit", func(t *testing.T) {
		p := freshProduct(t)
		_, masks, _, _, words, dead := p.CompiledProduct()
		// A bit at or above the member count on a state that already
		// accepts: anyAcc stays consistent, only the stray check fires.
		q := -1
		for s := 0; s < int(dead); s++ {
			if masks[s*int(words)] != 0 {
				q = s
				break
			}
		}
		if q < 0 {
			t.Fatal("no accepting product state found")
		}
		masks[q*int(words)] |= 1 << uint(p.Members())
		ds, err := Verify("p", p, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("flags-anyacc-disagrees", func(t *testing.T) {
		p := freshProduct(t)
		_, masks, anyAcc, _, words, dead := p.CompiledProduct()
		for s := 0; s < int(dead); s++ {
			if masks[s*int(words)] != 0 {
				anyAcc[s] = false
				break
			}
		}
		ds, err := Verify("p", p, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindFlags)
	})
	t.Run("totality", func(t *testing.T) {
		p := freshProduct(t)
		tab, _, _, _, _, _ := p.CompiledProduct()
		tab[k<<1] = 0 // unknown open column of state 0 routed to a live state
		ds, err := Verify("p", p, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindTotality)
	})
}

// TestCorruptProductMaskBit is the issue's headline corruption: ONE flipped
// mask bit on a live accepting state. The flip keeps the bitset non-zero and
// anyAcc consistent, so every static check stays silent, and the product
// remains self-consistent (its string path and coded kernels read the same
// corrupted masks), so the generic equivalence search stays silent too. Only
// the joint BFS against the member tuple — EquivalenceProduct — can see it,
// and it must report exactly one diagnostic kind with a counterexample that
// replays to a real per-member divergence.
func TestCorruptProductMaskBit(t *testing.T) {
	p := freshProduct(t)
	_, masks, _, _, words, _ := p.CompiledProduct()

	// Reach an accepting state the bounded search will visit (⟨a hits the
	// ".*a" member) and set a zero bit below the member count there.
	ev := p.Evaluator()
	ev.Step(encoding.Event{Kind: encoding.Open, Label: "a"})
	if !ev.Accepting() {
		t.Fatal("state after ⟨a should accept (member .*a)")
	}
	q := int(ev.State())
	row := masks[q*int(words) : (q+1)*int(words)]
	bit := -1
	for i := 0; i < p.Members(); i++ {
		if row[i/64]&(1<<(uint(i)%64)) == 0 {
			bit = i
			break
		}
	}
	if bit < 0 {
		t.Fatal("no zero mask bit to flip")
	}
	row[bit/64] |= 1 << (uint(bit) % 64)

	if ds, err := StaticVerify("p", p); err != nil || len(ds) != 0 {
		t.Fatalf("mask-bit flip should be statically silent, got %v, %v", ds, err)
	}
	if eq, _, err := Equivalence("p", p, testLimits); err != nil || eq != nil {
		t.Fatalf("mask-bit flip should pass the self-consistency search, got %v, %v", eq, err)
	}
	ds, err := Verify("p", p, testLimits)
	if err != nil {
		t.Fatal(err)
	}
	wantOnlyKind(t, ds, KindEquivalence)
	ce := ds[0]
	if len(ce.Events) == 0 || ce.Counterexample == "" {
		t.Fatalf("equivalence diagnostic without counterexample: %+v", ce)
	}

	// Replay: the product's mask and the member tuple must really disagree
	// on some bit along the counterexample.
	pev := p.Evaluator()
	members := p.MemberMachines()
	mevs := make([]core.Evaluator, len(members))
	for i, m := range members {
		mevs[i] = m.Evaluator()
	}
	diverged := false
	for _, e := range ce.Events {
		pev.Step(e)
		mask := pev.AcceptMask()
		for i, mu := range mevs {
			mu.Step(e)
			if mu.Accepting() != (mask[i/64]&(1<<(uint(i)%64)) != 0) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Errorf("counterexample %q does not replay to a member-bit divergence", ce.Counterexample)
	}
}
