// Package tablecheck statically verifies the compiled transition tables of
// DESIGN.md §11 and checks each compiled machine against its uncompiled
// (string-path) form over a bounded universe of trees.
//
// The compiled tables are the artifacts the hot path actually executes, so
// they get their own analysis layer on top of treelint's source-level
// contracts. Six invariant classes are checked, each with its own
// diagnostic kind:
//
//   - shape: table lengths, strides and row counts are consistent with the
//     declared state count and alphabet width;
//   - closure: every non-poison entry is in range after flag masking, and
//     poison entries are exactly -1;
//   - flags: selection-flag bits appear only in open columns, backtrack
//     candidates only in close columns, dead-state rows are self-absorbing,
//     and redundant compiled data (component vectors, fused accept bits)
//     agrees with its source of truth;
//   - totality: exactly one successor per (state, symbol, kind), with the
//     unknown-symbol column present and poison-closed;
//   - earliest: the earliest-decision flags of DESIGN.md §14 equal the
//     reachability fixpoint recomputed from the transition tables — a
//     corrupted set bit would silently drop matches, a corrupted clear bit
//     would silently forfeit the early exit;
//   - equivalence: the batched kernels agree with the per-event string path
//     on every well-formed tree within Limits, reported with a minimal
//     counterexample event sequence.
//
// Static checks run first; the bounded-equivalence search only runs on a
// statically clean machine (a malformed table would make it report derived
// noise instead of the root cause).
package tablecheck

import (
	"fmt"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/stackeval"
)

// Kind classifies a diagnostic by the invariant class it violates.
type Kind string

// The six invariant classes.
const (
	KindShape       Kind = "shape"
	KindClosure     Kind = "closure"
	KindFlags       Kind = "flags"
	KindTotality    Kind = "totality"
	KindEarliest    Kind = "earliest"
	KindEquivalence Kind = "equivalence"
)

// Diagnostic is one verified invariant violation.
type Diagnostic struct {
	// Machine is the caller-supplied name of the machine under check.
	Machine string `json:"machine"`
	// Kind is the violated invariant class.
	Kind Kind `json:"kind"`
	// Detail locates and describes the violation.
	Detail string `json:"detail"`
	// Counterexample renders Events in the paper's notation (equivalence
	// diagnostics only): a minimal event sequence on which the compiled and
	// uncompiled machines diverge.
	Counterexample string `json:"counterexample,omitempty"`
	// Events is the counterexample event sequence itself.
	Events []encoding.Event `json:"-"`
}

// String renders the diagnostic as machine: [kind] detail.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Machine, d.Kind, d.Detail)
	if d.Counterexample != "" {
		s += fmt.Sprintf(" (counterexample: %s)", d.Counterexample)
	}
	return s
}

// maxDiagnostics caps the report per machine: a systematically corrupted
// table (every entry of a DRA mask block, say) should read as one story,
// not thousands of lines.
const maxDiagnostics = 25

// reporter accumulates diagnostics up to the cap.
type reporter struct {
	machine   string
	ds        []Diagnostic
	truncated bool
}

func (r *reporter) add(k Kind, format string, args ...any) {
	if len(r.ds) >= maxDiagnostics {
		if !r.truncated {
			r.truncated = true
			r.ds = append(r.ds, Diagnostic{Machine: r.machine, Kind: k,
				Detail: fmt.Sprintf("diagnostic limit (%d) reached; further violations suppressed", maxDiagnostics)})
		}
		return
	}
	r.ds = append(r.ds, Diagnostic{Machine: r.machine, Kind: k, Detail: fmt.Sprintf(format, args...)})
}

func (r *reporter) full() bool { return len(r.ds) > maxDiagnostics }

// StaticVerify runs the shape, closure, flags and totality checks on a
// compiled machine. Supported machines: *core.TagDFA,
// *core.StacklessEvaluator, *core.DRA, *core.SynopsisMachine,
// *stackeval.Evaluator, the negated AL wrapper (via its InnerSynopsis
// accessor), and evaluators exposing their automaton through a Machine
// accessor. Lazily-compiled tables are checked in their current fill
// state.
func StaticVerify(name string, m any) ([]Diagnostic, error) {
	r := &reporter{machine: name}
	switch v := m.(type) {
	case *core.TagDFA:
		staticTagDFA(r, v)
	case *core.StacklessEvaluator:
		staticStackless(r, v)
	case *stackeval.Evaluator:
		staticPushdown(r, v)
	case *core.DRA:
		staticDRA(r, v)
	case *core.SynopsisMachine:
		staticSynopsis(r, v)
	case *core.ProductDFA:
		staticProduct(r, v)
	case interface{ InnerSynopsis() *core.SynopsisMachine }:
		staticSynopsis(r, v.InnerSynopsis())
	case interface{ Machine() *core.TagDFA }:
		staticTagDFA(r, v.Machine())
	case interface{ Machine() *core.DRA }:
		staticDRA(r, v.Machine())
	case interface{ Machine() *core.ProductDFA }:
		staticProduct(r, v.Machine())
	default:
		return nil, fmt.Errorf("tablecheck: unsupported machine type %T", m)
	}
	return r.ds, nil
}

// Verify runs the full check: static invariants first, then — only when
// the tables are statically clean — the bounded-equivalence search, then
// the static pass once more (the search exercises lazily-compiled machines,
// whose tables may have grown rows the first pass never saw).
func Verify(name string, m any, lim Limits) ([]Diagnostic, error) {
	ds, err := StaticVerify(name, m)
	if err != nil || len(ds) > 0 {
		return ds, err
	}
	eq, _, err := Equivalence(name, m, lim)
	if err != nil {
		return nil, err
	}
	if eq != nil {
		ds = append(ds, *eq)
	}
	// Products additionally verify against the tuple of their members —
	// the generic search above only proves the product self-consistent
	// (string path vs coded kernels).
	if p, ok := m.(*core.ProductDFA); ok && eq == nil {
		pq, _, err := EquivalenceProduct(name, p, lim)
		if err != nil {
			return nil, err
		}
		if pq != nil {
			ds = append(ds, *pq)
		}
	}
	post, err := StaticVerify(name, m)
	if err != nil {
		return ds, err
	}
	return append(ds, post...), nil
}

// MachineName returns a default display name for a machine, for hooks that
// receive machines without caller-side naming.
func MachineName(m any) string {
	switch v := m.(type) {
	case *core.TagDFA:
		if v.CloseAny != nil {
			return "TagDFA(term)"
		}
		return "TagDFA(markup)"
	case *core.StacklessEvaluator:
		if v.Blind() {
			return "StacklessEvaluator(term)"
		}
		return "StacklessEvaluator(markup)"
	case *core.DRA:
		return "DRA"
	case *stackeval.Evaluator:
		return "PushdownEvaluator"
	case *core.SynopsisMachine:
		if v.Blind() {
			return "SynopsisMachine(term)"
		}
		return "SynopsisMachine(markup)"
	case interface{ InnerSynopsis() *core.SynopsisMachine }:
		return "AL/" + MachineName(v.InnerSynopsis())
	case *core.ProductDFA:
		if v.TermEncoding() {
			return fmt.Sprintf("ProductDFA(term,%d)", v.Members())
		}
		return fmt.Sprintf("ProductDFA(markup,%d)", v.Members())
	}
	return fmt.Sprintf("%T", m)
}

// InstallCompileHook installs a core.CompileHook that statically verifies
// every compiled table the moment it is built, reporting each diagnostic
// through report. Machines the verifier does not understand pass silently
// (the hook sees every compilation, including future families). The
// returned function restores the previous hook. Release builds never call
// this: with no hook installed the compile paths pay one nil check per
// compilation and the kernels pay nothing.
func InstallCompileHook(report func(Diagnostic)) (uninstall func()) {
	prev := core.CompileHook
	core.CompileHook = func(m any) {
		ds, err := StaticVerify(MachineName(m), m)
		if err != nil {
			return
		}
		for _, d := range ds {
			report(d)
		}
	}
	return func() { core.CompileHook = prev }
}
