package tablecheck

import (
	"fmt"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
)

// Machine is one named machine of the repository corpus.
type Machine struct {
	Name string
	M    any
}

// Corpus compiles every machine the repository constructs from the paper —
// the DRAs of Examples 2.2 and 2.5–2.7, the Proposition 2.8 chain machines,
// the Proposition 2.3 FormalDRA translations, and the full registerless
// family (tag DFAs, stackless evaluators, synopsis machines, both
// encodings) over the Figure 3 queries. This is the verification corpus of
// cmd/tablecheck and the differential-test corpus of this package's own
// tests.
func Corpus() ([]Machine, error) {
	var out []Machine

	// Table DRAs, mirroring cmd/dralint's builtin list.
	out = append(out,
		Machine{"dra/example22", core.Example22()},
		Machine{"dra/example26", core.Example26()},
		Machine{"dra/example27", core.Example27Minimal()},
	)
	for _, expr := range []string{"ab*", "(ab)*", ".*a"} {
		l, err := rex.CompileString(expr, alphabet.Letters("ab"))
		if err != nil {
			return nil, fmt.Errorf("corpus: compile %q: %w", expr, err)
		}
		out = append(out, Machine{"dra/example25(" + expr + ")", core.Example25(l)})
	}
	for _, chain := range [][]string{{"a", "b"}, {"a", "b", "c"}} {
		d, err := core.ChainPatternDRA(alphabet.Letters("abc"), chain)
		if err != nil {
			return nil, fmt.Errorf("corpus: chain %v: %w", chain, err)
		}
		out = append(out, Machine{fmt.Sprintf("dra/chain%v", chain), d})
	}
	for _, expr := range []string{paperfigs.Fig3aRegex, paperfigs.Fig3bRegex, paperfigs.Fig3cRegex} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		d, err := core.FormalDRA(an, 0)
		if err != nil {
			return nil, fmt.Errorf("corpus: FormalDRA(%s): %w", expr, err)
		}
		out = append(out, Machine{"dra/formal(" + expr + ")", d})
	}

	// The registerless family over the Figure 3 queries, mirroring the
	// coded-pipeline differential tests.
	an3a := classify.Analyze(paperfigs.Fig3a())
	an3b := classify.Analyze(paperfigs.Fig3b())
	an3c := classify.Analyze(paperfigs.Fig3c())
	cof, err := rex.CompileString("ab|ba", paperfigs.GammaABC())
	if err != nil {
		return nil, fmt.Errorf("corpus: compile ab|ba: %w", err)
	}
	anCof := classify.Analyze(cof.Complement())

	add := func(name string, m any, err error) error {
		if err != nil {
			return fmt.Errorf("corpus: %s: %w", name, err)
		}
		out = append(out, Machine{name, m})
		return nil
	}
	tagM, err := core.RegisterlessQL(an3a)
	if err := add("tagdfa/markup", tagM, err); err != nil {
		return nil, err
	}
	tagB, err := core.BlindRegisterlessQL(an3a)
	if err := add("tagdfa/term", tagB, err); err != nil {
		return nil, err
	}
	stM, err := core.StacklessQL(an3c)
	if err := add("stackless/markup", stM, err); err != nil {
		return nil, err
	}
	stB, err := core.BlindStacklessQL(an3c)
	if err := add("stackless/term", stB, err); err != nil {
		return nil, err
	}
	el, err := core.RegisterlessEL(an3a)
	if err := add("synopsis/el", el, err); err != nil {
		return nil, err
	}
	elCof, err := core.RegisterlessEL(anCof)
	if err := add("synopsis/el-cofinite", elCof, err); err != nil {
		return nil, err
	}
	al, err := core.RegisterlessAL(an3b)
	if err := add("synopsis/al", al, err); err != nil {
		return nil, err
	}
	alB, err := core.BlindRegisterlessAL(an3b)
	if err := add("synopsis/al-term", alB, err); err != nil {
		return nil, err
	}

	// The §16 pushdown fallback, compiled for arbitrary regular languages —
	// no HAR restriction, so the members deliberately include the suffix
	// queries no stackless machine realizes.
	for _, expr := range []string{"(a|b)*ab", "a(a|b)*b", "a*"} {
		l, err := rex.CompileString(expr, alphabet.Letters("ab"))
		if err != nil {
			return nil, fmt.Errorf("corpus: compile %q: %w", expr, err)
		}
		out = append(out, Machine{"pushdown/" + expr, stackeval.QL(l)})
	}

	// Products of the §13 multi-query engine: a markup product over one
	// shared alphabet, a term product, and a mixed-alphabet markup product
	// whose members die individually on labels outside their own alphabets.
	tagQL := func(expr string, alph *alphabet.Alphabet) (*core.TagDFA, error) {
		l, err := rex.CompileString(expr, alph)
		if err != nil {
			return nil, err
		}
		return core.RegisterlessQL(classify.Analyze(l))
	}
	blindQL := func(expr string, alph *alphabet.Alphabet) (*core.TagDFA, error) {
		l, err := rex.CompileString(expr, alph)
		if err != nil {
			return nil, err
		}
		return core.BlindRegisterlessQL(classify.Analyze(l))
	}
	abc := paperfigs.GammaABC()
	var prodErr error
	mkProduct := func(name string, members ...*core.TagDFA) {
		if prodErr != nil {
			return
		}
		p, err := core.NewProductDFA(members, 0)
		if err != nil {
			prodErr = fmt.Errorf("corpus: %s: %w", name, err)
			return
		}
		out = append(out, Machine{name, p})
	}
	pm1, err1 := tagQL("a.*b", abc)
	pm2, err2 := tagQL(".*a", abc)
	pm3, err3 := tagQL("a.*c", abc)
	pt1, err4 := blindQL("a.*b", abc)
	pt2, err5 := blindQL(".*a", abc)
	px1, err6 := tagQL("a.*b", alphabet.Letters("ab"))
	px2, err7 := tagQL("a.*c", alphabet.Letters("ac"))
	for _, err := range []error{err1, err2, err3, err4, err5, err6, err7} {
		if err != nil {
			return nil, fmt.Errorf("corpus: product member: %w", err)
		}
	}
	mkProduct("product/markup", pm1, pm2, pm3)
	mkProduct("product/term", pt1, pt2)
	mkProduct("product/mixed-alphabet", px1, px2)
	if prodErr != nil {
		return nil, prodErr
	}
	return out, nil
}
