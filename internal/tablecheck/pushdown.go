package tablecheck

import (
	"stackless/internal/stackeval"
)

// staticPushdown checks the compiled (n+1)×(k+1) word table of the §16
// pushdown fallback. The table is fully redundant with the DFA it was
// compiled from — every entry is the word of a DFA target state with the
// accept flag folded in — so unlike the lazily-filled machines every
// defect is statically visible, and there are no poison entries: dead is
// row n of the table itself, absorbing under opens and revivable by a pop.
func staticPushdown(r *reporter, ev *stackeval.Evaluator) {
	tab, words, stride := ev.CompiledTable()
	d := ev.DFA()
	n := d.NumStates()
	k := d.Alphabet.Size()

	// Shape. The scans below index by q*stride+col, so a broken shape would
	// only produce derived noise: report it and stop.
	if stride != k+1 {
		r.add(KindShape, "stride %d, want k+1 = %d for alphabet size %d", stride, k+1, k)
	}
	if len(words) != n+1 {
		r.add(KindShape, "word vector length %d, want n+1 = %d", len(words), n+1)
	}
	if len(tab) != (n+1)*stride {
		r.add(KindShape, "table length %d, want (n+1)·stride = %d", len(tab), (n+1)*stride)
	}
	if len(r.ds) > 0 {
		return
	}

	// Word vector: redundant with the DFA — code q with the accept flag
	// folded in, dead the bare code n. Every table entry below is compared
	// against these words, so a broken vector would drown the report in
	// derived noise: report it and stop.
	for q := 0; q < n; q++ {
		want := int32(q)
		if d.Accept[q] {
			want |= stackeval.AccBit
		}
		if words[q] != want {
			r.add(KindFlags, "word [q=%d] = %#x, want %#x (code with accept=%v)", q, words[q], want, d.Accept[q])
		}
	}
	if words[n] != int32(n) {
		r.add(KindFlags, "dead word = %#x, want bare code n = %d (never accepting)", words[n], n)
	}
	if len(r.ds) > 0 {
		return
	}

	dead := words[n]
	at := func(q, col int) int32 { return tab[q*stride+col] }
	inRange := func(e int32) bool {
		return e&^(stackeval.AccBit|stackeval.StateMask) == 0 && int(e&stackeval.StateMask) <= n
	}

	// Closure: every entry's state code targets a row of the table (the
	// dead row is a legal target) and carries no bits beyond the accept
	// flag.
	for q := 0; q <= n && !r.full(); q++ {
		for col := 0; col <= k; col++ {
			if e := at(q, col); !inRange(e) {
				r.add(KindClosure, "entry [q=%d col=%d] = %#x targets no row (codes run 0..%d)", q, col, e, n)
			}
		}
	}

	// Flags: the dead row absorbs — every entry, unknown column included,
	// is the dead word itself.
	for col := 0; col <= k; col++ {
		if e := at(n, col); inRange(e) && e != dead {
			r.add(KindFlags, "dead row escapes: [col=%d] = %#x, want %#x", col, e, dead)
		}
	}

	// Flags: live known columns are bit-exactly the word of the DFA
	// transition target. The accept flag rides every table load —
	// pre-selection is a mask test on the word just loaded — so a stray or
	// missing bit drops or invents matches even with the right state code.
	for q := 0; q < n && !r.full(); q++ {
		for a := 0; a < k; a++ {
			e := at(q, a)
			if !inRange(e) {
				continue
			}
			if want := words[d.Delta[q][a]]; e != want {
				r.add(KindFlags, "entry [q=%d a=%d] = %#x, delta says state %d (word %#x)", q, a, e, d.Delta[q][a], want)
			}
		}
	}

	// Totality: the unknown-label column of every live row kills the path —
	// the dead word, revived only by the pop at the foreign subtree's close.
	for q := 0; q < n && !r.full(); q++ {
		if e := at(q, k); inRange(e) && e != dead {
			r.add(KindTotality, "unknown column not dead-closed: [q=%d] = %#x, want %#x", q, e, dead)
		}
	}
}
