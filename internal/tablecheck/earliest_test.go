package tablecheck

import (
	"testing"
)

// The corruption tests flip one earliest-decision flag in place — the
// accessors return the live backing arrays — and pin that the verifier
// reports exactly the earliest kind, in both failure directions.

func TestCorruptTagDFAEarliest(t *testing.T) {
	t.Run("flag-set-drops-matches", func(t *testing.T) {
		d := freshTagDFA(t)
		dec := d.CompiledEarliest()
		// The start state can always still reach a match on Fig 3a, so its
		// flag must be clear; setting it claims the run is decided at event
		// zero.
		if dec[0] != 0 {
			t.Fatalf("precondition: start-state flag = %d, want 0", dec[0])
		}
		dec[0] = 1
		ds, err := Verify("t", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindEarliest)
	})
	t.Run("flag-clear-forfeits-exit", func(t *testing.T) {
		d := freshTagDFA(t)
		dec := d.CompiledEarliest()
		_, _, _, dead := d.CompiledTable()
		// The dead row is absorbing and never accepting, so its flag must
		// be set; clearing it forfeits the early exit after poison.
		if dec[dead] != 1 {
			t.Fatalf("precondition: dead-row flag = %d, want 1", dec[dead])
		}
		dec[dead] = 0
		ds, err := Verify("t", d, testLimits)
		if err != nil {
			t.Fatal(err)
		}
		wantOnlyKind(t, ds, KindEarliest)
	})
}

func TestCorruptStacklessEarliest(t *testing.T) {
	ev := freshStackless(t)
	dec := ev.CompiledEarliest()
	if dec[ev.Analysis().D.Start] != 0 {
		t.Fatalf("precondition: start-state flag = %d, want 0", dec[ev.Analysis().D.Start])
	}
	dec[ev.Analysis().D.Start] = 1
	ds, err := Verify("s", ev, testLimits)
	if err != nil {
		t.Fatal(err)
	}
	wantOnlyKind(t, ds, KindEarliest)
}

// TestCorpusEarliestFlags spot-checks the corpus: every tag DFA and
// stackless machine carries flags of the right length with only 0/1
// entries (the bitwise agreement itself is TestCorpusClean's job — the
// static pass now includes the earliest class).
func TestCorpusEarliestFlags(t *testing.T) {
	ms, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, m := range ms {
		var dec []int32
		switch v := m.M.(type) {
		case interface{ CompiledEarliest() []int32 }:
			dec = v.CompiledEarliest()
		default:
			continue
		}
		checked++
		for i, f := range dec {
			if f != 0 && f != 1 {
				t.Errorf("%s: earliest flag [%d] = %d, want 0 or 1", m.Name, i, f)
			}
		}
	}
	if checked == 0 {
		t.Fatal("corpus exposed no earliest flags")
	}
}
