package tablecheck

import (
	"sync"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
)

// The fuzz corpus encodes one event per byte: bit 0 is the kind, bits 1–2
// select the label among a, b, c and one out-of-alphabet string. The
// decoded streams are arbitrary — unbalanced, ill-labelled — exactly the
// inputs the batched kernels must poison identically to the string path.

func fuzzDecode(data []byte) []encoding.Event {
	if len(data) > 256 {
		data = data[:256]
	}
	labels := [4]string{"a", "b", "c", "zz"}
	evs := make([]encoding.Event, len(data))
	for i, b := range data {
		e := encoding.Event{Kind: encoding.Kind(b & 1), Label: labels[(b>>1)%4]}
		if e.Kind == encoding.Close && b&8 != 0 {
			e.Label = "" // term-style unlabelled close
		}
		evs[i] = e
	}
	return evs
}

func fuzzEncode(evs []encoding.Event) []byte {
	ids := map[string]byte{"a": 0, "b": 1, "c": 2}
	out := make([]byte, len(evs))
	for i, e := range evs {
		b := byte(e.Kind) & 1
		if e.Kind == encoding.Close && e.Label == "" {
			out[i] = b | 8
			continue
		}
		id, ok := ids[e.Label]
		if !ok {
			id = 3
		}
		out[i] = b | id<<1
	}
	return out
}

var fuzzMachines struct {
	once sync.Once
	ms   []machineUnderTest
	err  error
}

// fuzzCorpusMachines builds a fixed cross-family set once per process.
func fuzzCorpusMachines() ([]machineUnderTest, error) {
	f := &fuzzMachines
	f.once.Do(func() {
		an3a := classify.Analyze(paperfigs.Fig3a())
		an3b := classify.Analyze(paperfigs.Fig3b())
		an3c := classify.Analyze(paperfigs.Fig3c())
		build := []func() (any, error){
			func() (any, error) { return core.RegisterlessQL(an3a) },
			func() (any, error) { return core.BlindRegisterlessQL(an3a) },
			func() (any, error) { return core.StacklessQL(an3c) },
			func() (any, error) { return core.BlindStacklessQL(an3c) },
			func() (any, error) { return core.RegisterlessEL(an3a) },
			func() (any, error) { return core.RegisterlessAL(an3b) },
			func() (any, error) { return core.Example27Minimal(), nil },
			func() (any, error) {
				return stackeval.QL(rex.MustCompile("(a|b)*ab", alphabet.Letters("abc"))), nil
			},
		}
		for _, b := range build {
			m, err := b()
			if err != nil {
				f.err = err
				return
			}
			mu, _, err := underTest(m)
			if err != nil {
				f.err = err
				return
			}
			f.ms = append(f.ms, mu)
		}
	})
	return f.ms, f.err
}

// FuzzTablecheckRoundtrip is the equivalence check of this package driven
// by fuzzed event streams instead of enumerated trees: on every prefix of
// every input, the string path and both batched kernels must agree on
// acceptance, selection and configuration. Seeds include real
// counterexamples mined from deliberately corrupted tables.
func FuzzTablecheckRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})                   // a ā
	f.Add([]byte{0, 2, 3, 9, 1})          // nested with a term close
	f.Add([]byte{6, 7, 6, 6})             // unknown labels, unbalanced
	f.Add([]byte{0, 2, 2, 3, 3, 4, 5, 1}) // a ⟨b ⟨b b̄⟩ b̄⟩ ⟨c c̄⟩ ā
	// Mine a real divergence counterexample from a corrupted table and seed
	// its event stream: regressions in the kernels tend to cluster around
	// exactly these shapes.
	if d, err := core.RegisterlessQL(classify.Analyze(paperfigs.Fig3a())); err == nil {
		tab, _, stride, dead := d.CompiledTable()
		for i, e := range tab {
			if e != dead && (i%int(stride))%2 == 0 {
				tab[i] = (e + 1) % dead
				break
			}
		}
		if diag, _, err := Equivalence("seed", d, Limits{Depth: 3, Width: 2, Alpha: 3, MaxNodes: 20000}); err == nil && diag != nil {
			f.Add(fuzzEncode(diag.Events))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := fuzzDecode(data)
		ms, err := fuzzCorpusMachines()
		if err != nil {
			t.Skip(err)
		}
		ce := make([]encoding.CodedEvent, 1)
		for mi, mu := range ms {
			mu.Reset()
			strCfg := mu.SaveConfig()
			codCfg := strCfg
			coder := alphabet.NewCoder(mu.CodeAlphabet())
			for i, e := range evs {
				mu.RestoreConfig(strCfg)
				mu.Step(e)
				strAcc := mu.Accepting()
				strCfg = mu.SaveConfig()

				ce[0] = encoding.CodedEvent{Sym: coder.Code(e.Label), Kind: e.Kind}
				prev := codCfg
				mu.RestoreConfig(prev)
				mu.StepBatch(ce)
				codAcc := mu.Accepting()
				codCfg = mu.SaveConfig()

				mu.RestoreConfig(prev)
				hits := mu.SelectBatch(ce, nil)
				selCfg := mu.SaveConfig()

				if strAcc != codAcc {
					t.Fatalf("machine %d event %d (%s): Accepting string=%v coded=%v", mi, i, e, strAcc, codAcc)
				}
				if e.Kind == encoding.Open {
					if hit := len(hits) > 0; hit != codAcc {
						t.Fatalf("machine %d event %d (%s): SelectBatch hit=%v Accepting=%v", mi, i, e, hit, codAcc)
					}
				}
				if codCfg.Key() != selCfg.Key() {
					t.Fatalf("machine %d event %d (%s): StepBatch %q vs SelectBatch %q", mi, i, e, codCfg.Key(), selCfg.Key())
				}
			}
		}
	})
}
