package tablecheck

import (
	"fmt"
	"strings"

	"stackless/internal/alphabet"
	"stackless/internal/core"
	"stackless/internal/encoding"
)

// Static and equivalence checks for the product family (DESIGN.md §13).
// The static pass mirrors staticTagDFA over the product's flat table, with
// the acceptance vector generalized to bitset mask columns; the equivalence
// pass is a joint BFS of the product against the tuple of its member
// machines — the defining property of the construction, stronger than the
// generic string-vs-coded search (which the product family also runs, via
// its underTest case).

// staticProduct checks the flat (n+1)×2(K+1) table and the (n+1)×words mask
// block of a compiled product against its declared dimensions.
func staticProduct(r *reporter, p *core.ProductDFA) {
	tab, masks, anyAcc, stride, words, dead := p.CompiledProduct()
	n := p.NumStates()
	k := p.Alphabet().Size()
	nm := p.Members()

	// Shape. The scans below index by q*stride+col and q*words+w, so a
	// broken shape would only produce derived noise: report it and stop.
	if stride != int32(2*(k+1)) {
		r.add(KindShape, "stride %d, want 2(K+1) = %d for union alphabet size %d", stride, 2*(k+1), k)
	}
	if words != int32((nm+63)/64) {
		r.add(KindShape, "mask words %d, want ceil(members/64) = %d for %d members", words, (nm+63)/64, nm)
	}
	if dead != int32(n) {
		r.add(KindShape, "dead state %d, want n = %d", dead, n)
	}
	if len(tab) != (n+1)*int(stride) {
		r.add(KindShape, "table length %d, want (n+1)·stride = %d", len(tab), (n+1)*int(stride))
	}
	if len(masks) != (n+1)*int(words) {
		r.add(KindShape, "mask block length %d, want (n+1)·words = %d", len(masks), (n+1)*int(words))
	}
	if len(anyAcc) != n+1 {
		r.add(KindShape, "anyAcc vector length %d, want n+1 = %d", len(anyAcc), n+1)
	}
	if s := p.Start(); s < 0 || s > n {
		r.add(KindShape, "start state %d outside [0, %d]", s, n)
	}
	if len(r.ds) > 0 {
		return
	}

	at := func(q, col int) int32 { return tab[q*int(stride)+col] }
	mask := func(q int) []uint64 { return masks[q*int(words) : (q+1)*int(words)] }

	// Closure: every entry targets a row (the dead row is a legal target;
	// as with TagDFA, poison is the dead row itself, never a sentinel).
	for q := 0; q <= n && !r.full(); q++ {
		for col := 0; col < int(stride); col++ {
			if e := at(q, col); e < 0 || e > dead {
				r.add(KindClosure, "entry [q=%d col=%d] = %d outside [0, %d]", q, col, e, dead)
			}
		}
	}

	// Flags: the dead row is self-absorbing with a zero mask; anyAcc is
	// redundant with the masks and must agree; bits at or above the member
	// count are meaningless and must stay zero.
	for col := 0; col < int(stride); col++ {
		if e := at(n, col); e >= 0 && e < dead {
			r.add(KindFlags, "dead row escapes: [dead col=%d] = %d", col, e)
		}
	}
	var strayMask [64]uint64 // per-word mask of legal bits
	for w := 0; w < int(words); w++ {
		low := w * 64
		switch {
		case nm-low >= 64:
			strayMask[w] = ^uint64(0)
		case nm-low > 0:
			strayMask[w] = 1<<(uint(nm-low)) - 1
		}
	}
	for q := 0; q <= n && !r.full(); q++ {
		row := mask(q)
		any := false
		for w, word := range row {
			if stray := word &^ strayMask[w]; stray != 0 {
				r.add(KindFlags, "mask bits above member count set: [q=%d word=%d] stray %#x (%d members)", q, w, stray, nm)
			}
			any = any || word != 0
		}
		if q == n && any {
			r.add(KindFlags, "dead state accepts: non-zero mask on the dead row")
		}
		if anyAcc[q] != any {
			r.add(KindFlags, "anyAcc[%d] = %v disagrees with mask (non-zero: %v)", q, anyAcc[q], any)
		}
	}

	// Totality: unknown open columns poison-close (every member steps its
	// own unknown open into its dead state, so the tuple is the dead row);
	// markup unknown close likewise; term close columns ignore the label
	// (every close column of a row is equal — the composed CloseAny step).
	uo, uc := k<<1, k<<1|1
	for q := 0; q < n && !r.full(); q++ {
		if e := at(q, uo); e != dead && e >= 0 && e <= dead {
			r.add(KindTotality, "unknown open column not poison-closed: [q=%d] = %d, want dead = %d", q, e, dead)
		}
		if !p.TermEncoding() {
			if e := at(q, uc); e != dead && e >= 0 && e <= dead {
				r.add(KindTotality, "unknown close column not poison-closed: [q=%d] = %d, want dead = %d", q, e, dead)
			}
			continue
		}
		want := at(q, uc)
		for s := 0; s < k; s++ {
			if e := at(q, s<<1|1); e != want && e >= 0 && e <= dead {
				r.add(KindTotality, "term close column [q=%d sym=%d] = %d differs from the row's ◁ target %d", q, s, e, want)
			}
		}
	}
}

// EquivalenceProduct checks the product against the tuple of its member
// machines over every well-formed tree within lim — the defining property
// of the construction: after every event prefix, bit i of the product's
// acceptance mask equals member i's Accepting, and the product's own
// Accepting is their disjunction. The coded kernel is held to the same
// tuple: after each Open, SelectBatchMasks must hit exactly when some
// member accepts, with the member bitset. Trees are labelled from the first
// min(K, Alpha) symbols of the *union* alphabet plus one label outside it,
// so members die individually (a union label outside member i's alphabet)
// as well as jointly. The first divergence in BFS order — hence a minimal
// counterexample — is returned, with the number of joint states explored.
//
//treelint:partial configs are parked in BFS nodes and restored in later iterations; save/restore pairing is per-node, not per-path
func EquivalenceProduct(name string, p *core.ProductDFA, lim Limits) (*Diagnostic, int, error) {
	lim = lim.withDefaults()
	pev := p.Evaluator()
	members := p.MemberMachines()
	mevs := make([]core.Snapshotter, len(members))
	for i, m := range members {
		mu, ok := m.Evaluator().(core.Snapshotter)
		if !ok {
			return nil, 0, fmt.Errorf("tablecheck: member %d evaluator lost its snapshot support", i)
		}
		mevs[i] = mu
	}
	alph := p.Alphabet()
	k := alph.Size()
	unk := unknownLabel(alph)
	unkSym := alphabet.Sym(k)
	blind := p.TermEncoding()

	type move struct {
		label string
		sym   alphabet.Sym
	}
	var opens []move
	for s := 0; s < k && s < lim.Alpha; s++ {
		opens = append(opens, move{label: alph.Symbol(s), sym: alphabet.Sym(s)})
	}
	opens = append(opens, move{label: unk, sym: unkSym})

	type jointNode struct {
		prod core.SavedConfig
		mem  []core.SavedConfig
		tree treeCtx
		par  *jointNode
		ev   encoding.Event
	}
	events := func(n *jointNode) []encoding.Event {
		var rev []*jointNode
		for q := n; q.par != nil; q = q.par {
			rev = append(rev, q)
		}
		out := make([]encoding.Event, len(rev))
		for i := range rev {
			out[i] = rev[len(rev)-1-i].ev
		}
		return out
	}
	diverge := func(n *jointNode, e encoding.Event, format string, args ...any) *Diagnostic {
		evs := append(events(n), e)
		return &Diagnostic{
			Machine:        name,
			Kind:           KindEquivalence,
			Detail:         fmt.Sprintf(format, args...),
			Counterexample: renderEvents(evs),
			Events:         evs,
		}
	}
	nodeKey := func(n *jointNode) string {
		var b strings.Builder
		b.WriteString(n.prod.Key())
		for _, c := range n.mem {
			b.WriteByte('|')
			b.WriteString(c.Key())
		}
		b.WriteByte('|')
		n.tree.key(&b)
		return b.String()
	}
	parked := func(n *jointNode) bool {
		if !n.prod.Parked() {
			return false
		}
		for _, c := range n.mem {
			if !c.Parked() {
				return false
			}
		}
		return true
	}

	pev.Reset()
	root := &jointNode{prod: pev.SaveConfig(), mem: make([]core.SavedConfig, len(mevs))}
	for i, mu := range mevs {
		mu.Reset()
		root.mem[i] = mu.SaveConfig()
	}
	seen := map[string]bool{nodeKey(root): true}
	queue := []*jointNode{root}
	explored := 0
	batch := make([]encoding.CodedEvent, 1)
	words := p.MaskWords()

	for len(queue) > 0 && explored < lim.MaxNodes {
		n := queue[0]
		queue = queue[1:]
		explored++
		if parked(n) {
			continue
		}

		type edge struct {
			ev   encoding.Event
			ce   encoding.CodedEvent
			tree treeCtx
		}
		var edges []edge
		depth := len(n.tree.stack)
		canOpen := !n.tree.rootDone && depth < lim.Depth &&
			(depth == 0 || n.tree.stack[depth-1].children < lim.Width)
		if canOpen {
			for _, mv := range opens {
				st := make([]frame, depth+1)
				copy(st, n.tree.stack)
				if depth > 0 {
					st[depth-1].children++
				}
				st[depth] = frame{sym: mv.sym}
				edges = append(edges, edge{
					ev:   encoding.Event{Kind: encoding.Open, Label: mv.label},
					ce:   encoding.CodedEvent{Sym: mv.sym, Kind: encoding.Open},
					tree: treeCtx{stack: st},
				})
			}
		}
		if depth > 0 {
			top := n.tree.stack[depth-1]
			st := make([]frame, depth-1)
			copy(st, n.tree.stack[:depth-1])
			ev := encoding.Event{Kind: encoding.Close}
			ce := encoding.CodedEvent{Sym: unkSym, Kind: encoding.Close}
			if !blind {
				ce.Sym = top.sym
				if top.sym == unkSym {
					ev.Label = unk
				} else {
					ev.Label = alph.Symbol(int(top.sym))
				}
			}
			edges = append(edges, edge{ev: ev, ce: ce, tree: treeCtx{stack: st, rootDone: depth == 1}})
		}

		for _, ed := range edges {
			// Product, string path.
			pev.RestoreConfig(n.prod)
			pev.Step(ed.ev)
			pAcc := pev.Accepting()
			pMask := pev.AcceptMask()
			pCfg := pev.SaveConfig()

			// Product, coded kernel with masks.
			batch[0] = ed.ce
			pev.RestoreConfig(n.prod)
			hits, hmasks := pev.SelectBatchMasks(batch, nil, nil)
			selCfg := pev.SaveConfig()
			if selCfg.Key() != pCfg.Key() {
				return diverge(n, ed.ev, "string path and SelectBatchMasks land in different configurations: %q vs %q",
					pCfg.Key(), selCfg.Key()), explored, nil
			}
			pev.RestoreConfig(pCfg)

			// Members, string path.
			memCfg := make([]core.SavedConfig, len(mevs))
			anyMem := false
			for i, mu := range mevs {
				mu.RestoreConfig(n.mem[i])
				mu.Step(ed.ev)
				acc := mu.Accepting()
				memCfg[i] = mu.SaveConfig()
				if acc != (pMask[i/64]&(1<<(uint(i)%64)) != 0) {
					return diverge(n, ed.ev, "mask bit %d = %v disagrees with member %d Accepting = %v",
						i, !acc, i, acc), explored, nil
				}
				anyMem = anyMem || acc
			}
			if pAcc != anyMem {
				return diverge(n, ed.ev, "product Accepting %v, members' disjunction %v", pAcc, anyMem), explored, nil
			}
			if ed.ev.Kind == encoding.Open {
				if hit := len(hits) > 0; hit != anyMem {
					return diverge(n, ed.ev, "SelectBatchMasks hit=%v but some member accepts=%v after the Open",
						hit, anyMem), explored, nil
				}
				if len(hits) > 0 {
					for w := 0; w < words; w++ {
						if hmasks[w] != pMask[w] {
							return diverge(n, ed.ev, "SelectBatchMasks mask word %d = %#x, want %#x",
								w, hmasks[w], pMask[w]), explored, nil
						}
					}
				}
			}

			child := &jointNode{prod: pCfg, mem: memCfg, tree: ed.tree, par: n, ev: ed.ev}
			if key := nodeKey(child); !seen[key] {
				seen[key] = true
				queue = append(queue, child)
			}
		}
	}
	return nil, explored, nil
}
