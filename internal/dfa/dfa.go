// Package dfa implements deterministic finite automata over interned
// alphabets, together with the constructions the paper relies on: boolean
// combinations, reachability, Hopcroft and Moore minimization, language
// equivalence with counterexample words, and Tarjan's strongly connected
// components.
//
// All automata are complete: Delta[q][a] is defined for every state q and
// symbol id a. Partial automata must be completed (with an explicit sink)
// before being wrapped in a DFA.
package dfa

import (
	"fmt"

	"stackless/internal/alphabet"
)

// DFA is a complete deterministic finite automaton.
//
// States are 0..NumStates-1. Delta is indexed as Delta[state][symbolID].
type DFA struct {
	Alphabet *alphabet.Alphabet
	Start    int
	Accept   []bool  // len == NumStates
	Delta    [][]int // [NumStates][Alphabet.Size()]
}

// NumStates returns the number of states.
func (d *DFA) NumStates() int { return len(d.Delta) }

// New allocates a DFA with n states over alph, all transitions pointing to
// state 0 and no accepting states. Callers fill in Delta and Accept.
func New(alph *alphabet.Alphabet, n, start int) *DFA {
	d := &DFA{
		Alphabet: alph,
		Start:    start,
		Accept:   make([]bool, n),
		Delta:    make([][]int, n),
	}
	for i := range d.Delta {
		d.Delta[i] = make([]int, alph.Size())
	}
	return d
}

// Validate checks structural well-formedness: start and all transition
// targets in range, table dimensions consistent.
func (d *DFA) Validate() error {
	n := d.NumStates()
	if n == 0 {
		return fmt.Errorf("dfa: no states")
	}
	if d.Start < 0 || d.Start >= n {
		return fmt.Errorf("dfa: start state %d out of range [0,%d)", d.Start, n)
	}
	if len(d.Accept) != n {
		return fmt.Errorf("dfa: accept vector has %d entries for %d states", len(d.Accept), n)
	}
	k := d.Alphabet.Size()
	for q, row := range d.Delta {
		if len(row) != k {
			return fmt.Errorf("dfa: state %d has %d transitions for alphabet of size %d", q, len(row), k)
		}
		for a, t := range row {
			if t < 0 || t >= n {
				return fmt.Errorf("dfa: transition %d --%s--> %d out of range", q, d.Alphabet.Symbol(a), t)
			}
		}
	}
	return nil
}

// Step returns the successor of state q on symbol id a.
func (d *DFA) Step(q, a int) int { return d.Delta[q][a] }

// StepWord returns q · w for a word of symbol ids.
func (d *DFA) StepWord(q int, w []int) int {
	for _, a := range w {
		q = d.Delta[q][a]
	}
	return q
}

// StepString returns q · w where w is a sequence of symbols given by name.
// It panics on symbols outside the alphabet (test/construction helper).
func (d *DFA) StepString(q int, symbols ...string) int {
	for _, s := range symbols {
		q = d.Delta[q][d.Alphabet.MustID(s)]
	}
	return q
}

// Accepts reports whether the automaton accepts the word of symbol ids.
func (d *DFA) Accepts(w []int) bool {
	return d.Accept[d.StepWord(d.Start, w)]
}

// AcceptsSymbols reports acceptance of a word given as symbol names.
// Symbols outside the alphabet make the word rejected (there is no run).
func (d *DFA) AcceptsSymbols(symbols []string) bool {
	q := d.Start
	for _, s := range symbols {
		id, ok := d.Alphabet.ID(s)
		if !ok {
			return false
		}
		q = d.Delta[q][id]
	}
	return d.Accept[q]
}

// Clone returns a deep copy sharing only the (immutable) alphabet.
func (d *DFA) Clone() *DFA {
	c := &DFA{
		Alphabet: d.Alphabet,
		Start:    d.Start,
		Accept:   make([]bool, len(d.Accept)),
		Delta:    make([][]int, len(d.Delta)),
	}
	copy(c.Accept, d.Accept)
	for i, row := range d.Delta {
		c.Delta[i] = make([]int, len(row))
		copy(c.Delta[i], row)
	}
	return c
}

// Complement returns a DFA for the complement language (same states,
// accepting set flipped).
func (d *DFA) Complement() *DFA {
	c := d.Clone()
	for i := range c.Accept {
		c.Accept[i] = !c.Accept[i]
	}
	return c
}

// Reachable returns the set of states reachable from Start (as a bool
// vector) and their count.
func (d *DFA) Reachable() ([]bool, int) {
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start}
	seen[d.Start] = true
	count := 1
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Delta[q] {
			if !seen[t] {
				seen[t] = true
				count++
				stack = append(stack, t)
			}
		}
	}
	return seen, count
}

// Trim returns an equivalent DFA containing only the states reachable from
// Start, renumbered in BFS discovery order (so Start becomes 0).
func (d *DFA) Trim() *DFA {
	n := d.NumStates()
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	order := []int{d.Start}
	remap[d.Start] = 0
	for i := 0; i < len(order); i++ {
		q := order[i]
		for _, t := range d.Delta[q] {
			if remap[t] == -1 {
				remap[t] = len(order)
				order = append(order, t)
			}
		}
	}
	t := New(d.Alphabet, len(order), 0)
	for newQ, oldQ := range order {
		t.Accept[newQ] = d.Accept[oldQ]
		for a, tgt := range d.Delta[oldQ] {
			t.Delta[newQ][a] = remap[tgt]
		}
	}
	return t
}

// IsEmpty reports whether the recognized language is empty.
func (d *DFA) IsEmpty() bool {
	seen, _ := d.Reachable()
	for q, ok := range seen {
		if ok && d.Accept[q] {
			return false
		}
	}
	return true
}

// SomeAcceptedWord returns a shortest accepted word (as symbol ids), or
// (nil, false) if the language is empty. The empty word is returned as an
// empty non-nil slice.
func (d *DFA) SomeAcceptedWord() ([]int, bool) {
	return d.ShortestWordToAccept(d.Start)
}

// ShortestWordToAccept returns a shortest word w with Accept[q·w], searching
// by BFS from q. The empty word is returned as an empty non-nil slice.
func (d *DFA) ShortestWordToAccept(q int) ([]int, bool) {
	return d.ShortestWordTo(q, func(s int) bool { return d.Accept[s] })
}

// ShortestWordTo returns a shortest word w such that goal(q·w) holds.
func (d *DFA) ShortestWordTo(q int, goal func(int) bool) ([]int, bool) {
	type pred struct{ from, sym int }
	n := d.NumStates()
	prev := make([]pred, n)
	seen := make([]bool, n)
	queue := []int{q}
	seen[q] = true
	prev[q] = pred{-1, -1}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if goal(s) {
			var w []int
			for cur := s; prev[cur].from != -1; cur = prev[cur].from {
				w = append(w, prev[cur].sym)
			}
			for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
				w[i], w[j] = w[j], w[i]
			}
			if w == nil {
				w = []int{}
			}
			return w, true
		}
		for a, t := range d.Delta[s] {
			if !seen[t] {
				seen[t] = true
				prev[t] = pred{s, a}
				queue = append(queue, t)
			}
		}
	}
	return nil, false
}

// WordString renders a word of symbol ids using the automaton's alphabet.
func (d *DFA) WordString(w []int) string {
	out := ""
	for _, a := range w {
		out += d.Alphabet.Symbol(a)
	}
	return out
}

// String renders a compact human-readable transition table.
func (d *DFA) String() string {
	s := fmt.Sprintf("DFA(states=%d start=%d alphabet=%s)\n", d.NumStates(), d.Start, d.Alphabet)
	for q := range d.Delta {
		mark := " "
		if d.Accept[q] {
			mark = "*"
		}
		s += fmt.Sprintf("%s%3d:", mark, q)
		for a, t := range d.Delta[q] {
			s += fmt.Sprintf(" %s->%d", d.Alphabet.Symbol(a), t)
		}
		s += "\n"
	}
	return s
}
