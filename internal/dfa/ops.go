package dfa

import (
	"fmt"

	"stackless/internal/alphabet"
)

// BoolOp combines the acceptance bits of two automata in a product
// construction.
type BoolOp func(a, b bool) bool

// And, Or and Xor are the standard boolean combinators for Product.
var (
	And BoolOp = func(a, b bool) bool { return a && b }
	Or  BoolOp = func(a, b bool) bool { return a || b }
	Xor BoolOp = func(a, b bool) bool { return a != b }
	// Diff accepts words in the first language but not the second.
	Diff BoolOp = func(a, b bool) bool { return a && !b }
)

// Product builds the synchronous product of two DFAs over the same symbol
// set, accepting according to op. Only the reachable part of the product is
// materialized. The result uses x's alphabet; y must contain the same
// symbols (possibly with different ids).
func Product(x, y *DFA, op BoolOp) (*DFA, error) {
	if !x.Alphabet.SameSymbolSet(y.Alphabet) {
		return nil, fmt.Errorf("dfa: product over different alphabets %s vs %s", x.Alphabet, y.Alphabet)
	}
	// Map x's symbol ids onto y's.
	ymap := make([]int, x.Alphabet.Size())
	for a := 0; a < x.Alphabet.Size(); a++ {
		ymap[a] = y.Alphabet.MustID(x.Alphabet.Symbol(a))
	}

	type pair struct{ p, q int }
	index := map[pair]int{}
	var order []pair
	getID := func(pr pair) int {
		if id, ok := index[pr]; ok {
			return id
		}
		id := len(order)
		index[pr] = id
		order = append(order, pr)
		return id
	}
	start := getID(pair{x.Start, y.Start})

	k := x.Alphabet.Size()
	var delta [][]int
	var accept []bool
	for i := 0; i < len(order); i++ {
		pr := order[i]
		row := make([]int, k)
		for a := 0; a < k; a++ {
			row[a] = getID(pair{x.Delta[pr.p][a], y.Delta[pr.q][ymap[a]]})
		}
		delta = append(delta, row)
		accept = append(accept, op(x.Accept[pr.p], y.Accept[pr.q]))
	}
	return &DFA{Alphabet: x.Alphabet, Start: start, Accept: accept, Delta: delta}, nil
}

// Intersect returns a DFA for L(x) ∩ L(y).
func Intersect(x, y *DFA) (*DFA, error) { return Product(x, y, And) }

// Union returns a DFA for L(x) ∪ L(y).
func Union(x, y *DFA) (*DFA, error) { return Product(x, y, Or) }

// SymDiff returns a DFA for the symmetric difference of the two languages.
func SymDiff(x, y *DFA) (*DFA, error) { return Product(x, y, Xor) }

// Equivalent reports whether x and y recognize the same language, using a
// union-find product exploration (Hopcroft–Karp). On inequivalence it also
// returns a witness word (symbol ids in x's alphabet) accepted by exactly
// one of the two.
func Equivalent(x, y *DFA) (bool, []int, error) {
	if !x.Alphabet.SameSymbolSet(y.Alphabet) {
		return false, nil, fmt.Errorf("dfa: equivalence over different alphabets")
	}
	sd, err := SymDiff(x, y)
	if err != nil {
		return false, nil, err
	}
	if w, ok := sd.SomeAcceptedWord(); ok {
		return false, w, nil
	}
	return true, nil, nil
}

// Sink returns the id of an all-rejecting sink state if one exists
// (a non-accepting state with all transitions to itself), or -1.
func (d *DFA) Sink() int {
	for q := range d.Delta {
		if d.Accept[q] {
			continue
		}
		sink := true
		for _, t := range d.Delta[q] {
			if t != q {
				sink = false
				break
			}
		}
		if sink {
			return q
		}
	}
	return -1
}

// RemapAlphabet returns an automaton over target (which must contain the
// same symbols as d's alphabet, possibly with different ids) with the
// transition table re-indexed accordingly.
func (d *DFA) RemapAlphabet(target *alphabet.Alphabet) (*DFA, error) {
	if !d.Alphabet.SameSymbolSet(target) {
		return nil, fmt.Errorf("dfa: remap to alphabet with different symbols")
	}
	out := New(target, d.NumStates(), d.Start)
	copy(out.Accept, d.Accept)
	for q, row := range d.Delta {
		for a, t := range row {
			out.Delta[q][target.MustID(d.Alphabet.Symbol(a))] = t
		}
	}
	return out, nil
}
