package dfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stackless/internal/alphabet"
)

func abAlphabet() *alphabet.Alphabet { return alphabet.Letters("ab") }

// evenAs builds a 2-state DFA over {a,b} accepting words with an even
// number of a's.
func evenAs(t *testing.T) *DFA {
	t.Helper()
	d := New(abAlphabet(), 2, 0)
	a, b := d.Alphabet.MustID("a"), d.Alphabet.MustID("b")
	d.Accept[0] = true
	d.Delta[0][a], d.Delta[0][b] = 1, 0
	d.Delta[1][a], d.Delta[1][b] = 0, 1
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// endsInA accepts words ending in a.
func endsInA(t *testing.T) *DFA {
	t.Helper()
	d := New(abAlphabet(), 2, 0)
	a, b := d.Alphabet.MustID("a"), d.Alphabet.MustID("b")
	d.Accept[1] = true
	d.Delta[0][a], d.Delta[0][b] = 1, 0
	d.Delta[1][a], d.Delta[1][b] = 1, 0
	return d
}

func wordIDs(d *DFA, w string) []int {
	ids := make([]int, 0, len(w))
	for _, r := range w {
		ids = append(ids, d.Alphabet.MustID(string(r)))
	}
	return ids
}

func TestStepAndAccepts(t *testing.T) {
	d := evenAs(t)
	cases := map[string]bool{
		"":      true,
		"a":     false,
		"aa":    true,
		"ab":    false,
		"ba":    false,
		"bb":    true,
		"abab":  true,
		"aabab": false,
	}
	for w, want := range cases {
		if got := d.Accepts(wordIDs(d, w)); got != want {
			t.Errorf("evenAs(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestValidateRejectsBadAutomata(t *testing.T) {
	d := evenAs(t)
	d.Start = 7
	if err := d.Validate(); err == nil {
		t.Error("expected error for out-of-range start")
	}
	d = evenAs(t)
	d.Delta[0][0] = 99
	if err := d.Validate(); err == nil {
		t.Error("expected error for out-of-range transition")
	}
	d = evenAs(t)
	d.Accept = d.Accept[:1]
	if err := d.Validate(); err == nil {
		t.Error("expected error for short accept vector")
	}
}

func TestComplement(t *testing.T) {
	d := evenAs(t)
	c := d.Complement()
	for _, w := range []string{"", "a", "ab", "ba", "aa", "bab"} {
		if d.Accepts(wordIDs(d, w)) == c.Accepts(wordIDs(c, w)) {
			t.Errorf("complement agrees with original on %q", w)
		}
	}
}

func TestProductOps(t *testing.T) {
	x, y := evenAs(t), endsInA(t)
	inter, err := Intersect(x, y)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Union(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "a", "aa", "ba", "aba", "abab", "baa"} {
		ids := wordIDs(x, w)
		wantI := x.Accepts(ids) && y.Accepts(ids)
		wantU := x.Accepts(ids) || y.Accepts(ids)
		if got := inter.Accepts(wordIDs(inter, w)); got != wantI {
			t.Errorf("intersect(%q) = %v, want %v", w, got, wantI)
		}
		if got := uni.Accepts(wordIDs(uni, w)); got != wantU {
			t.Errorf("union(%q) = %v, want %v", w, got, wantU)
		}
	}
}

func TestTrimRemovesUnreachable(t *testing.T) {
	d := New(abAlphabet(), 3, 0)
	// state 2 unreachable
	d.Accept[0] = true
	d.Accept[2] = true
	for a := 0; a < 2; a++ {
		d.Delta[0][a] = 0
		d.Delta[1][a] = 2
		d.Delta[2][a] = 2
	}
	tr := d.Trim()
	if tr.NumStates() != 1 {
		t.Fatalf("Trim: got %d states, want 1", tr.NumStates())
	}
	if !tr.Accept[0] {
		t.Error("Trim lost acceptance of start state")
	}
}

func TestMinimizeCanonical(t *testing.T) {
	// Two structurally different automata for "ends in a" minimize to
	// identical automata.
	d1 := endsInA(t)
	// A redundant 4-state version.
	d2 := New(abAlphabet(), 4, 0)
	a, b := d2.Alphabet.MustID("a"), d2.Alphabet.MustID("b")
	d2.Accept[1] = true
	d2.Accept[3] = true
	d2.Delta[0][a], d2.Delta[0][b] = 1, 2
	d2.Delta[1][a], d2.Delta[1][b] = 3, 0
	d2.Delta[2][a], d2.Delta[2][b] = 3, 2
	d2.Delta[3][a], d2.Delta[3][b] = 1, 2
	m1, m2 := Minimize(d1), Minimize(d2)
	if m1.NumStates() != 2 || m2.NumStates() != 2 {
		t.Fatalf("minimal sizes: %d and %d, want 2 and 2", m1.NumStates(), m2.NumStates())
	}
	eq, w, err := Equivalent(m1, m2)
	if err != nil || !eq {
		t.Fatalf("minimized automata not equivalent (witness %v, err %v)", w, err)
	}
}

func TestMinimizeEmptyAndFull(t *testing.T) {
	d := New(abAlphabet(), 3, 0)
	for q := 0; q < 3; q++ {
		for a := 0; a < 2; a++ {
			d.Delta[q][a] = (q + 1) % 3
		}
	}
	m := Minimize(d)
	if m.NumStates() != 1 || m.Accept[0] {
		t.Errorf("empty language should minimize to 1 rejecting state, got %d states", m.NumStates())
	}
	if !m.IsEmpty() {
		t.Error("IsEmpty false for empty language")
	}
	for q := range d.Accept {
		d.Accept[q] = true
	}
	m = Minimize(d)
	if m.NumStates() != 1 || !m.Accept[0] {
		t.Errorf("full language should minimize to 1 accepting state")
	}
}

func TestHopcroftAgreesWithMooreRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alph := alphabet.Letters("abc")
	for i := 0; i < 200; i++ {
		d := Random(rng, alph, 1+rng.Intn(12)).Trim()
		h := hopcroft(d)
		m := MoorePartition(d)
		// Same partition up to renaming: states in same h-block iff same m-block.
		rename := map[int]int{}
		for q := range h {
			if prev, ok := rename[h[q]]; ok {
				if prev != m[q] {
					t.Fatalf("iteration %d: partitions disagree at state %d\n%s", i, q, d)
				}
			} else {
				rename[h[q]] = m[q]
			}
		}
		// And injectively.
		back := map[int]int{}
		for hb, mb := range rename {
			if prev, ok := back[mb]; ok && prev != hb {
				t.Fatalf("iteration %d: Hopcroft splits a Moore block\n%s", i, d)
			}
			back[mb] = hb
		}
	}
}

func TestMinimizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alph := alphabet.Letters("ab")
	for i := 0; i < 100; i++ {
		d := Random(rng, alph, 1+rng.Intn(10))
		m := Minimize(d)
		if !IsMinimal(m) {
			t.Fatalf("Minimize result not minimal:\n%s", m)
		}
		// Probe random words.
		for j := 0; j < 50; j++ {
			w := make([]int, rng.Intn(12))
			for k := range w {
				w[k] = rng.Intn(2)
			}
			if d.Accepts(w) != m.Accepts(w) {
				t.Fatalf("language changed by minimization on word %v\nbefore:\n%s\nafter:\n%s", w, d, m)
			}
		}
	}
}

func TestEquivalentWitness(t *testing.T) {
	x, y := evenAs(t), endsInA(t)
	eq, w, err := Equivalent(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("evenAs and endsInA reported equivalent")
	}
	if x.Accepts(w) == y.Accepts(w) {
		t.Errorf("witness %v does not separate the languages", w)
	}
}

func TestShortestWordToAccept(t *testing.T) {
	d := endsInA(t)
	w, ok := d.SomeAcceptedWord()
	if !ok || len(w) != 1 || d.Alphabet.Symbol(w[0]) != "a" {
		t.Errorf("shortest accepted word = %v, want [a]", w)
	}
}

func TestSCCsChainAndCycle(t *testing.T) {
	// 0 -> 1 <-> 2, plus self loop on 0 via b.
	alph := abAlphabet()
	d := New(alph, 3, 0)
	a, b := alph.MustID("a"), alph.MustID("b")
	d.Delta[0][a], d.Delta[0][b] = 1, 0
	d.Delta[1][a], d.Delta[1][b] = 2, 2
	d.Delta[2][a], d.Delta[2][b] = 1, 1
	comp, comps := d.SCCs()
	if len(comps) != 2 {
		t.Fatalf("got %d SCCs, want 2", len(comps))
	}
	if comp[1] != comp[2] || comp[0] == comp[1] {
		t.Errorf("bad SCC assignment %v", comp)
	}
	if d.AllSCCsSingleton() {
		t.Error("AllSCCsSingleton true despite a 2-cycle")
	}
	if got := d.SCCDAGDepth(); got != 2 {
		t.Errorf("SCCDAGDepth = %d, want 2", got)
	}
}

func TestSCCPropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alph := alphabet.Letters("ab")
	f := func(seed int64) bool {
		d := Random(rand.New(rand.NewSource(seed)), alph, 1+rng.Intn(15))
		comp, comps := d.SCCs()
		// Every state in exactly one component.
		seen := make([]bool, d.NumStates())
		for ci, members := range comps {
			for _, q := range members {
				if seen[q] || comp[q] != ci {
					return false
				}
				seen[q] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Transitions never go to a later-indexed component (reverse topo).
		for q := range d.Delta {
			for _, tgt := range d.Delta[q] {
				if comp[tgt] > comp[q] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSinkDetection(t *testing.T) {
	d := New(abAlphabet(), 2, 0)
	d.Accept[0] = true
	for a := 0; a < 2; a++ {
		d.Delta[0][a] = 1
		d.Delta[1][a] = 1
	}
	if got := d.Sink(); got != 1 {
		t.Errorf("Sink() = %d, want 1", got)
	}
	d.Accept[1] = true
	if got := d.Sink(); got != -1 {
		t.Errorf("Sink() = %d, want -1 for accepting sink", got)
	}
}

func TestRemapAlphabet(t *testing.T) {
	d := evenAs(t)
	ba := alphabet.Letters("ba")
	r, err := d.RemapAlphabet(ba)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "a", "ab", "aa", "bba"} {
		if d.Accepts(wordIDs(d, w)) != r.Accepts(wordIDs(r, w)) {
			t.Errorf("remapped automaton differs on %q", w)
		}
	}
}

// TestBrzozowskiAgreesWithHopcroft cross-checks the third minimization
// algorithm: same language, same (minimal) size.
func TestBrzozowskiAgreesWithHopcroft(t *testing.T) {
	rng := rand.New(rand.NewSource(4444))
	alph := alphabet.Letters("ab")
	for i := 0; i < 150; i++ {
		d := Random(rng, alph, 1+rng.Intn(9))
		h := Minimize(d)
		bz := Brzozowski(d)
		if h.NumStates() != bz.NumStates() {
			t.Fatalf("iter %d: Hopcroft %d states vs Brzozowski %d\n%s", i, h.NumStates(), bz.NumStates(), d)
		}
		eq, w, err := Equivalent(h, bz)
		if err != nil || !eq {
			t.Fatalf("iter %d: languages differ (witness %v, err %v)", i, w, err)
		}
	}
}
