package dfa

// Minimize returns the canonical minimal DFA for d's language: trim to
// reachable states, merge Myhill–Nerode-equivalent states via Hopcroft's
// partition refinement, and renumber in BFS order from the start state so
// that equal languages yield identical automata.
//
// The result always contains at least one state; a DFA for the empty
// language minimizes to a single rejecting sink.
func Minimize(d *DFA) *DFA {
	t := d.Trim()
	part := hopcroft(t)
	return quotient(t, part).Trim()
}

// IsMinimal reports whether d is already minimal (all states reachable and
// pairwise inequivalent).
func IsMinimal(d *DFA) bool {
	_, reach := d.Reachable()
	if reach != d.NumStates() {
		return false
	}
	return Minimize(d).NumStates() == d.NumStates()
}

// hopcroft computes the coarsest congruence respecting acceptance and
// returns, for each state, the id of its block.
func hopcroft(d *DFA) []int {
	n := d.NumStates()
	k := d.Alphabet.Size()

	// Reverse transition lists: rev[a][q] = states p with p·a = q.
	rev := make([][][]int32, k)
	for a := 0; a < k; a++ {
		rev[a] = make([][]int32, n)
	}
	for p := 0; p < n; p++ {
		for a := 0; a < k; a++ {
			q := d.Delta[p][a]
			rev[a][q] = append(rev[a][q], int32(p))
		}
	}

	// Partition as blocks of states.
	block := make([]int, n) // state -> block id
	var blocks [][]int32    // block id -> states
	var accSt, rejSt []int32
	for q := 0; q < n; q++ {
		if d.Accept[q] {
			accSt = append(accSt, int32(q))
		} else {
			rejSt = append(rejSt, int32(q))
		}
	}
	addBlock := func(states []int32) int {
		id := len(blocks)
		blocks = append(blocks, states)
		for _, s := range states {
			block[s] = id
		}
		return id
	}
	if len(rejSt) > 0 {
		addBlock(rejSt)
	}
	if len(accSt) > 0 {
		addBlock(accSt)
	}

	// Worklist of (block, symbol) splitters.
	type splitter struct{ b, a int }
	work := make([]splitter, 0, len(blocks)*k)
	inWork := map[splitter]bool{}
	push := func(s splitter) {
		if !inWork[s] {
			inWork[s] = true
			work = append(work, s)
		}
	}
	// Seed with the smaller block for every symbol (classic optimization);
	// seeding with all blocks is also correct and simpler to reason about.
	for b := range blocks {
		for a := 0; a < k; a++ {
			push(splitter{b, a})
		}
	}

	mark := make([]bool, n)
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, sp)

		// X = preimage of splitter block under symbol a.
		var x []int32
		for _, q := range blocks[sp.b] {
			x = append(x, rev[sp.a][q]...)
		}
		if len(x) == 0 {
			continue
		}
		// Group X by current block; split any block partially covered.
		touched := map[int][]int32{}
		for _, p := range x {
			if !mark[p] {
				mark[p] = true
				touched[block[p]] = append(touched[block[p]], p)
			}
		}
		for _, p := range x {
			mark[p] = false
		}
		for b, inX := range touched {
			if len(inX) == len(blocks[b]) {
				continue // block entirely inside X; no split
			}
			// Split block b into inX and rest.
			inXSet := make(map[int32]bool, len(inX))
			for _, p := range inX {
				inXSet[p] = true
			}
			var rest []int32
			for _, p := range blocks[b] {
				if !inXSet[p] {
					rest = append(rest, p)
				}
			}
			blocks[b] = inX
			nb := addBlock(rest)
			// Requeue: the smaller part for each symbol; if (b,a) is
			// already queued the other part must be queued too.
			for a := 0; a < k; a++ {
				if inWork[splitter{b, a}] {
					push(splitter{nb, a})
				} else if len(inX) <= len(rest) {
					push(splitter{b, a})
				} else {
					push(splitter{nb, a})
				}
			}
		}
	}
	return block
}

// MoorePartition computes the same congruence as hopcroft by iterated
// signature refinement (Moore's algorithm). Exported for cross-checking in
// tests; quadratic but simple.
func MoorePartition(d *DFA) []int {
	n := d.NumStates()
	k := d.Alphabet.Size()
	class := make([]int, n)
	for q := 0; q < n; q++ {
		if d.Accept[q] {
			class[q] = 1
		}
	}
	next := make([]int, n)
	for {
		type sig struct {
			own  int
			succ string
		}
		index := map[sig]int{}
		changed := false
		for q := 0; q < n; q++ {
			s := sig{own: class[q]}
			b := make([]byte, 0, k*4)
			for a := 0; a < k; a++ {
				c := class[d.Delta[q][a]]
				b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			s.succ = string(b)
			id, ok := index[s]
			if !ok {
				id = len(index)
				index[s] = id
			}
			next[q] = id
		}
		for q := 0; q < n; q++ {
			if next[q] != class[q] {
				changed = true
			}
			class[q] = next[q]
		}
		if !changed {
			return class
		}
	}
}

// quotient merges states according to the block assignment.
func quotient(d *DFA, block []int) *DFA {
	nb := 0
	for _, b := range block {
		if b+1 > nb {
			nb = b + 1
		}
	}
	q := New(d.Alphabet, nb, block[d.Start])
	for s := range d.Delta {
		b := block[s]
		q.Accept[b] = d.Accept[s]
		for a, t := range d.Delta[s] {
			q.Delta[b][a] = block[t]
		}
	}
	return q
}

// Brzozowski implements Brzozowski's minimization — reverse, determinize,
// reverse, determinize — as a structurally independent cross-check of
// Hopcroft and Moore. It returns a minimal DFA for d's language.
func Brzozowski(d *DFA) *DFA {
	return reverseDeterminize(reverseDeterminize(d))
}

// reverseDeterminize computes a DFA for the reverse of d's language via the
// subset construction over reversed transitions.
func reverseDeterminize(d *DFA) *DFA {
	n := d.NumStates()
	k := d.Alphabet.Size()
	rev := make([][][]int, k)
	for a := 0; a < k; a++ {
		rev[a] = make([][]int, n)
	}
	for q := 0; q < n; q++ {
		for a := 0; a < k; a++ {
			t := d.Delta[q][a]
			rev[a][t] = append(rev[a][t], q)
		}
	}
	key := func(set []bool) string {
		b := make([]byte, (n+7)/8)
		for i, v := range set {
			if v {
				b[i/8] |= 1 << (i % 8)
			}
		}
		return string(b)
	}
	start := make([]bool, n)
	for q := 0; q < n; q++ {
		start[q] = d.Accept[q]
	}
	index := map[string]int{key(start): 0}
	sets := [][]bool{start}
	var delta [][]int
	var accept []bool
	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		row := make([]int, k)
		acc := cur[d.Start]
		for a := 0; a < k; a++ {
			succ := make([]bool, n)
			for q := 0; q < n; q++ {
				if !cur[q] {
					continue
				}
				for _, p := range rev[a][q] {
					succ[p] = true
				}
			}
			kk := key(succ)
			id, ok := index[kk]
			if !ok {
				id = len(sets)
				index[kk] = id
				sets = append(sets, succ)
			}
			row[a] = id
		}
		delta = append(delta, row)
		accept = append(accept, acc)
	}
	return &DFA{Alphabet: d.Alphabet, Start: 0, Accept: accept, Delta: delta}
}
