package dfa

// SCCs computes the strongly connected components of the transition graph
// using Tarjan's algorithm (iterative). It returns, for each state, the id
// of its component, plus the list of components. Component ids are assigned
// in reverse topological order of the condensation DAG: every transition
// leads from a component to one with an id less than or equal to its own...
// see Topological below for the forward order used by the simulations.
func (d *DFA) SCCs() (comp []int, comps [][]int) {
	return SCCsOf(d.Adjacency())
}

// SCCsOf is SCCs on a plain adjacency list (edges with out-of-range targets
// are ignored), usable for transition graphs of machines that are not DFAs.
func SCCsOf(adj [][]int) (comp []int, comps [][]int) {
	n := len(adj)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var next int

	type frame struct {
		v, ai int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		call := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ai < len(adj[f.v]) {
				w := adj[f.v][f.ai]
				f.ai++
				if w < 0 || w >= n {
					continue
				}
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order for f.v.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(comps)
					members = append(members, w)
					if w == v {
						break
					}
				}
				comps = append(comps, members)
			}
		}
	}
	return comp, comps
}

// TrivialSCC reports whether component c (given the comp assignment from
// SCCs) is trivial: a single state with no self loop.
func (d *DFA) TrivialSCC(members []int) bool {
	if len(members) != 1 {
		return false
	}
	q := members[0]
	for _, t := range d.Delta[q] {
		if t == q {
			return false // a self loop makes it non-trivial
		}
	}
	return true
}

// NonTrivialSCC reports whether the component has a cycle (more than one
// state, or a self loop).
func (d *DFA) NonTrivialSCC(members []int) bool {
	if len(members) > 1 {
		return true
	}
	q := members[0]
	for _, t := range d.Delta[q] {
		if t == q {
			return true
		}
	}
	return false
}

// AllSCCsSingleton reports whether every SCC is a singleton (possibly with a
// self loop): the structural condition for R-trivial languages used in
// Section 3.2 of the paper.
func (d *DFA) AllSCCsSingleton() bool {
	_, comps := d.SCCs()
	for _, members := range comps {
		if len(members) > 1 {
			return false
		}
	}
	return true
}

// SCCDAGDepth returns the length (in components) of the longest chain in
// the condensation DAG starting from the start state's component. This
// bounds the synopsis length in Lemma 3.11 and the register count in
// Lemma 3.8.
func (d *DFA) SCCDAGDepth() int {
	comp, comps := d.SCCs()
	nc := len(comps)
	// Build condensation adjacency.
	succ := make([][]int, nc)
	seen := make([]map[int]bool, nc)
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	for q := range d.Delta {
		for _, t := range d.Delta[q] {
			a, b := comp[q], comp[t]
			if a != b && !seen[a][b] {
				seen[a][b] = true
				succ[a] = append(succ[a], b)
			}
		}
	}
	memo := make([]int, nc)
	for i := range memo {
		memo[i] = -1
	}
	var depth func(c int) int
	depth = func(c int) int {
		if memo[c] != -1 {
			return memo[c]
		}
		best := 1
		memo[c] = 1 // provisional; condensation is acyclic so no real cycles
		for _, s := range succ[c] {
			if d := depth(s) + 1; d > best {
				best = d
			}
		}
		memo[c] = best
		return best
	}
	return depth(comp[d.Start])
}
