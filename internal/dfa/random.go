package dfa

import (
	"math/rand"

	"stackless/internal/alphabet"
)

// Random returns a uniformly random complete DFA with n states over alph,
// using rng. Each transition target and each acceptance bit is independent
// and uniform. Intended for property-based tests.
func Random(rng *rand.Rand, alph *alphabet.Alphabet, n int) *DFA {
	d := New(alph, n, 0)
	for q := 0; q < n; q++ {
		d.Accept[q] = rng.Intn(2) == 1
		for a := 0; a < alph.Size(); a++ {
			d.Delta[q][a] = rng.Intn(n)
		}
	}
	return d
}

// RandomMinimal returns a random *minimal* DFA with at most n states: it
// draws random automata and minimizes, retrying until the result has at
// least two states (so both acceptance outcomes are inhabited) or maxTries
// is exhausted, in which case the last minimization is returned anyway.
func RandomMinimal(rng *rand.Rand, alph *alphabet.Alphabet, n int) *DFA {
	var m *DFA
	for try := 0; try < 50; try++ {
		m = Minimize(Random(rng, alph, n))
		if m.NumStates() >= 2 {
			return m
		}
	}
	return m
}
