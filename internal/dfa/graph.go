package dfa

// Graph-level reachability and SCC machinery, shared by the DFA methods in
// this package and by analyses of machines that are not DFAs (notably the
// depth-register automata linted by internal/dralint). A graph is an
// adjacency list: adj[v] lists the successors of vertex v, duplicates
// allowed.

// ReachableFrom returns the set of vertices reachable from any of the given
// start vertices (including the starts themselves) by BFS over adj. Start
// vertices out of range are ignored.
func ReachableFrom(adj [][]int, starts ...int) []bool {
	n := len(adj)
	seen := make([]bool, n)
	var queue []int
	for _, s := range starts {
		if s >= 0 && s < n && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if w >= 0 && w < n && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// Reverse returns the reversed adjacency list of adj, dropping edges whose
// target is out of range.
func Reverse(adj [][]int) [][]int {
	rev := make([][]int, len(adj))
	for v, succs := range adj {
		for _, w := range succs {
			if w >= 0 && w < len(adj) {
				rev[w] = append(rev[w], v)
			}
		}
	}
	return rev
}

// Adjacency returns the transition graph of the automaton as an adjacency
// list (one edge per table entry; parallel edges are kept).
func (d *DFA) Adjacency() [][]int {
	adj := make([][]int, d.NumStates())
	for q, row := range d.Delta {
		adj[q] = append(adj[q], row...)
	}
	return adj
}
