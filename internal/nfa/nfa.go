// Package nfa implements nondeterministic finite automata with ε-moves and
// the subset construction to DFAs. It is the compilation target of the
// regular-expression package and the substrate for specialized DTDs
// (Section 4.1 of the paper), which are naturally nondeterministic.
package nfa

import (
	"sort"

	"stackless/internal/alphabet"
	"stackless/internal/dfa"
)

// NFA is a nondeterministic automaton with ε-transitions over an interned
// alphabet. States are 0..NumStates-1.
type NFA struct {
	Alphabet *alphabet.Alphabet
	Start    int
	Accept   []bool
	// Trans[q][a] lists the successors of q on symbol id a.
	Trans [][][]int
	// Eps[q] lists the ε-successors of q.
	Eps [][]int
}

// New allocates an NFA with n states and no transitions.
func New(alph *alphabet.Alphabet, n, start int) *NFA {
	m := &NFA{
		Alphabet: alph,
		Start:    start,
		Accept:   make([]bool, n),
		Trans:    make([][][]int, n),
		Eps:      make([][]int, n),
	}
	for i := range m.Trans {
		m.Trans[i] = make([][]int, alph.Size())
	}
	return m
}

// AddState appends a fresh state and returns its id.
func (m *NFA) AddState() int {
	id := len(m.Trans)
	m.Trans = append(m.Trans, make([][]int, m.Alphabet.Size()))
	m.Eps = append(m.Eps, nil)
	m.Accept = append(m.Accept, false)
	return id
}

// AddEdge adds a transition p --a--> q for symbol id a.
func (m *NFA) AddEdge(p, a, q int) {
	m.Trans[p][a] = append(m.Trans[p][a], q)
}

// AddEps adds an ε-transition p --ε--> q.
func (m *NFA) AddEps(p, q int) {
	m.Eps[p] = append(m.Eps[p], q)
}

// NumStates returns the number of states.
func (m *NFA) NumStates() int { return len(m.Trans) }

// closure expands set (sorted ids) with ε-reachability, in place, returning
// a sorted deduplicated slice.
func (m *NFA) closure(set []int) []int {
	seen := make(map[int]bool, len(set))
	stack := append([]int(nil), set...)
	for _, q := range set {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.Eps[q] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// Determinize performs the subset construction, producing a complete DFA
// (with an implicit dead state for the empty subset) over the same alphabet.
func (m *NFA) Determinize() *dfa.DFA {
	key := func(set []int) string {
		b := make([]byte, 0, len(set)*4)
		for _, q := range set {
			b = append(b, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
		}
		return string(b)
	}
	k := m.Alphabet.Size()
	index := map[string]int{}
	var subsets [][]int
	getID := func(set []int) int {
		kk := key(set)
		if id, ok := index[kk]; ok {
			return id
		}
		id := len(subsets)
		index[kk] = id
		subsets = append(subsets, set)
		return id
	}
	start := getID(m.closure([]int{m.Start}))

	var delta [][]int
	var accept []bool
	for i := 0; i < len(subsets); i++ {
		set := subsets[i]
		row := make([]int, k)
		acc := false
		for _, q := range set {
			if m.Accept[q] {
				acc = true
			}
		}
		for a := 0; a < k; a++ {
			var succ []int
			seen := map[int]bool{}
			for _, q := range set {
				for _, t := range m.Trans[q][a] {
					if !seen[t] {
						seen[t] = true
						succ = append(succ, t)
					}
				}
			}
			sort.Ints(succ)
			row[a] = getID(m.closure(succ))
		}
		delta = append(delta, row)
		accept = append(accept, acc)
	}
	return &dfa.DFA{Alphabet: m.Alphabet, Start: start, Accept: accept, Delta: delta}
}

// Accepts reports whether the NFA accepts the word of symbol ids (test
// helper; determinize for repeated evaluation).
func (m *NFA) Accepts(w []int) bool {
	cur := m.closure([]int{m.Start})
	for _, a := range w {
		var succ []int
		seen := map[int]bool{}
		for _, q := range cur {
			for _, t := range m.Trans[q][a] {
				if !seen[t] {
					seen[t] = true
					succ = append(succ, t)
				}
			}
		}
		sort.Ints(succ)
		cur = m.closure(succ)
	}
	for _, q := range cur {
		if m.Accept[q] {
			return true
		}
	}
	return false
}
