package nfa

import (
	"math/rand"
	"testing"

	"stackless/internal/alphabet"
)

// endsWithA builds the canonical NFA for Γ*a over {a,b}.
func endsWithA() *NFA {
	m := New(alphabet.Letters("ab"), 2, 0)
	a, b := 0, 1
	m.AddEdge(0, a, 0)
	m.AddEdge(0, b, 0)
	m.AddEdge(0, a, 1)
	m.Accept[1] = true
	return m
}

func ids(m *NFA, w string) []int {
	out := make([]int, 0, len(w))
	for _, r := range w {
		out = append(out, m.Alphabet.MustID(string(r)))
	}
	return out
}

func TestNFAAccepts(t *testing.T) {
	m := endsWithA()
	cases := map[string]bool{"": false, "a": true, "b": false, "ba": true, "ab": false, "aba": true}
	for w, want := range cases {
		if got := m.Accepts(ids(m, w)); got != want {
			t.Errorf("Accepts(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestDeterminizeAgrees(t *testing.T) {
	m := endsWithA()
	d := m.Determinize()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		w := make([]int, rng.Intn(12))
		for j := range w {
			w[j] = rng.Intn(2)
		}
		if m.Accepts(w) != d.Accepts(w) {
			t.Fatalf("NFA and subset DFA disagree on %v", w)
		}
	}
}

func TestEpsilonClosureChains(t *testing.T) {
	// 0 -ε-> 1 -ε-> 2, 2 -a-> 3(acc).
	m := New(alphabet.Letters("a"), 4, 0)
	m.AddEps(0, 1)
	m.AddEps(1, 2)
	m.AddEdge(2, 0, 3)
	m.Accept[3] = true
	if !m.Accepts([]int{0}) {
		t.Error("ε-chain not followed")
	}
	if m.Accepts(nil) {
		t.Error("empty word accepted")
	}
	d := m.Determinize()
	if !d.Accepts([]int{0}) || d.Accepts(nil) {
		t.Error("determinized ε-chain wrong")
	}
}

func TestEpsilonCycle(t *testing.T) {
	// ε-cycle must not loop forever.
	m := New(alphabet.Letters("a"), 2, 0)
	m.AddEps(0, 1)
	m.AddEps(1, 0)
	m.AddEdge(1, 0, 1)
	m.Accept[1] = true
	if !m.Accepts(nil) || !m.Accepts([]int{0}) {
		t.Error("ε-cycle handling wrong")
	}
	d := m.Determinize()
	if !d.Accepts(nil) {
		t.Error("determinization of ε-cycle wrong")
	}
}

// TestRandomNFADeterminize property-checks the subset construction against
// direct NFA simulation.
func TestRandomNFADeterminize(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alph := alphabet.Letters("ab")
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(6)
		m := New(alph, n, rng.Intn(n))
		for q := 0; q < n; q++ {
			m.Accept[q] = rng.Intn(3) == 0
			for e := 0; e < 3; e++ {
				if rng.Intn(2) == 0 {
					m.AddEdge(q, rng.Intn(2), rng.Intn(n))
				}
			}
			if rng.Intn(4) == 0 {
				m.AddEps(q, rng.Intn(n))
			}
		}
		d := m.Determinize()
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 60; j++ {
			w := make([]int, rng.Intn(10))
			for k := range w {
				w[k] = rng.Intn(2)
			}
			if m.Accepts(w) != d.Accepts(w) {
				t.Fatalf("iter %d: disagree on %v", i, w)
			}
		}
	}
}

func TestAddState(t *testing.T) {
	m := New(alphabet.Letters("a"), 1, 0)
	id := m.AddState()
	if id != 1 || m.NumStates() != 2 {
		t.Errorf("AddState gave %d (n=%d)", id, m.NumStates())
	}
	m.AddEdge(0, 0, id)
	m.Accept[id] = true
	if !m.Accepts([]int{0}) {
		t.Error("edge to fresh state not used")
	}
}
