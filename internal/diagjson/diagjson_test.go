package diagjson

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSchema locks the wire shape: an indented array of records with
// exactly the five agreed keys, in declaration order.
func TestWriteSchema(t *testing.T) {
	var b strings.Builder
	err := Write(&b, []Record{
		{File: "a.go", Line: 3, Analyzer: "treelint", Kind: "allocfree", Message: "m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &records); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, b.String())
	}
	if len(records) != 1 {
		t.Fatalf("got %d records, want 1", len(records))
	}
	r := records[0]
	for _, key := range []string{"file", "line", "analyzer", "kind", "message"} {
		if _, ok := r[key]; !ok {
			t.Errorf("record missing %q: %v", key, r)
		}
	}
	if len(r) != 5 {
		t.Errorf("record has %d keys, want exactly 5: %v", len(r), r)
	}
	if r["file"] != "a.go" || r["line"] != float64(3) || r["message"] != "m" {
		t.Errorf("round-trip mismatch: %v", r)
	}
	if !strings.HasSuffix(b.String(), "\n") {
		t.Error("output must end in a newline")
	}
}

// TestWriteNilIsEmptyArray: a nil slice must encode as [], never null, so
// consumers can always range over the result.
func TestWriteNilIsEmptyArray(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(b.String()); got != "[]" {
		t.Errorf("nil records encoded as %q, want []", got)
	}
}
