// Package diagjson defines the one diagnostic record shape every stackless
// CLI emits under -json: dralint, treelint, tablecheck, bcegate and
// allocgate all print a JSON array of Records, so downstream tooling (CI
// annotators, editors) parses a single schema regardless of which gate
// produced the finding.
package diagjson

import (
	"encoding/json"
	"io"
)

// A Record is one machine-readable diagnostic.
type Record struct {
	// File is the diagnosed file, slash-separated, relative to the tool's
	// working tree when possible.
	File string `json:"file"`
	// Line is the 1-based line of the finding (0 when the finding is not
	// anchored to a line, e.g. a whole-table property).
	Line int `json:"line"`
	// Analyzer names the tool that produced the record: "dralint",
	// "treelint", "tablecheck", "bcegate" or "allocgate".
	Analyzer string `json:"analyzer"`
	// Kind is the tool-specific finding class (an analyzer name for
	// treelint, a check kind for tablecheck, "escape" for allocgate, ...).
	Kind string `json:"kind"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

// Write encodes records as an indented JSON array followed by a newline.
// A nil or empty slice encodes as [] — never null — so consumers can
// always range over the result.
func Write(w io.Writer, records []Record) error {
	if records == nil {
		records = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
