package stackless

import (
	"strings"
	"testing"
)

// The acceptance surface of the speculative pushdown (DESIGN.md §16): an
// unrestricted query — stack strategy, no stackless machine exists — on a
// bounded-depth stream with Workers > 1 actually fans out, reports
// Fallback "speculative" (not the old "cutall" degrade), and returns the
// sequential match set byte for byte.

// wideXML builds one root holding n two-deep subtrees: 2n+1 nodes at
// depth ≤ 3, the wide-and-shallow shape speculation is for.
func wideXML(n int) string {
	var b strings.Builder
	b.WriteString("<a>")
	for i := 0; i < n; i++ {
		b.WriteString("<a><b></b></a>")
	}
	b.WriteString("</a>")
	return b.String()
}

func TestStackSpeculativeFanout(t *testing.T) {
	withProcs(t, 8)
	q := MustCompileRegex(".*ab", abc) // suffix language: not HAR, pushdown only
	doc := wideXML(400)

	want, seqStats := collectMatches(t, q, doc, Options{})
	if seqStats.Strategy != Stack || seqStats.Fallback != "" {
		t.Fatalf("sequential stats = %+v, want a plain stack run", seqStats)
	}
	if len(want) != 400 { // every <b> node: path a·a·b matches .*ab
		t.Fatalf("sequential run found %d matches, want 400", len(want))
	}

	c := NewCollector()
	got, stats := collectMatches(t, q, doc, Options{Workers: 4, Collector: c})
	if stats.Strategy != Stack || stats.CutPolicy != "boundeddepth" {
		t.Fatalf("stats = %+v, want stack/boundeddepth", stats)
	}
	if stats.Fallback != "speculative" {
		t.Fatalf("Fallback = %q, want \"speculative\" (stream depth 3, %d events)", stats.Fallback, stats.Events)
	}
	if stats.Workers != 4 || stats.Chunks < 2 {
		t.Fatalf("stats = %+v, want a real fan-out on 4 workers", stats)
	}
	if stats.Pipeline != PipelineCoded {
		t.Fatalf("speculative run reports pipeline %q, want coded", stats.Pipeline)
	}
	if len(got) != len(want) {
		t.Fatalf("speculative run: %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Matches != seqStats.Matches || stats.Events != seqStats.Events {
		t.Fatalf("speculative stats %+v vs sequential %+v", stats, seqStats)
	}
	if c.ParallelRuns.Load() != 1 || c.SpecChunks.Load() != int64(stats.Chunks) {
		t.Fatalf("collector: parallel=%d spec_chunks=%d, want 1/%d",
			c.ParallelRuns.Load(), c.SpecChunks.Load(), stats.Chunks)
	}
	if c.StackFallbacks.Load() != 1 || c.SeqFallbacks.Load() != 0 {
		t.Fatalf("fallback counters: stack=%d seq=%d, want 1/0 (no sequential degrade)",
			c.StackFallbacks.Load(), c.SeqFallbacks.Load())
	}

	// The same query on a deep chain degrades sequentially and says so.
	deep := strings.Repeat("<a>", 50) + strings.Repeat("</a>", 50)
	_, stats = collectMatches(t, q, deep, Options{Workers: 4})
	if stats.Fallback != "deep" || stats.Chunks != 1 {
		t.Fatalf("deep-chain stats = %+v, want the \"deep\" sequential degrade", stats)
	}
}
