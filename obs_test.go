package stackless

import (
	"math/rand"
	"strings"
	"testing"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/obs"
)

// The overhead contract of the observability layer (DESIGN.md §9): with no
// collector attached the engine must not allocate — every hook is a nil
// check — and with one attached, the counters must agree between the
// sequential and chunk-parallel engines so the numbers mean the same thing
// regardless of how a run was scheduled.

// TestObsDisabledZeroAllocs pins the disabled path to zero allocations per
// evaluation, for every strategy, on both engine entry points. A regression
// here means an obs hook moved off the nil-check pattern.
func TestObsDisabledZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	events := encoding.Markup(gen.RandomTree(rng, abc, 200))
	src := encoding.NewSliceSource(events)
	queries := map[string]*Query{
		"registerless": MustCompileRegex("a.*b", abc),
		"stackless":    MustCompileRegex(".*a.*b", abc),
		"stack":        MustCompileRegex(".*ab", abc),
	}
	for name, q := range queries {
		ev, _, err := q.queryEvaluator(MarkupEncoding, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		core.Instrument(ev, nil)
		src.Rewind()
		if _, err := core.SelectObs(ev, nil, src, nil); err != nil { // warm-up: grow internal slices
			t.Fatalf("%s: %v", name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			src.Rewind()
			if _, err := core.SelectObs(ev, nil, src, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Select with nil collector allocates %.1f times per run, want 0", name, allocs)
		}

		src.Rewind()
		if _, err := core.SelectEarliestObs(ev, nil, src, nil); err != nil { // warm-up: lazy earliest-flag build
			t.Fatalf("%s earliest: %v", name, err)
		}
		allocs = testing.AllocsPerRun(50, func() {
			src.Rewind()
			if _, err := core.SelectEarliestObs(ev, nil, src, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: SelectEarliest with nil collector allocates %.1f times per run, want 0", name, allocs)
		}

		rec, _, err := q.elEvaluator(MarkupEncoding, true)
		if err != nil {
			t.Fatalf("%s EL: %v", name, err)
		}
		core.Instrument(rec, nil)
		src.Rewind()
		if _, err := core.RecognizeObs(rec, nil, src); err != nil {
			t.Fatalf("%s EL: %v", name, err)
		}
		allocs = testing.AllocsPerRun(50, func() {
			src.Rewind()
			if _, err := core.RecognizeObs(rec, nil, src); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Recognize with nil collector allocates %.1f times per run, want 0", name, allocs)
		}
	}
}

// TestObsCollectorPublicParity runs the same documents sequentially and
// chunk-parallel through the public API and checks the collector totals are
// identical — events, matches, and the chunking composition invariant.
func TestObsCollectorPublicParity(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(43))
	for name, q := range map[string]*Query{
		"registerless": MustCompileRegex("a.*b", abc),
		"stackless":    MustCompileRegex(".*a.*b", abc),
	} {
		for i := 0; i < 25; i++ {
			doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(80)))
			seqC := NewCollector()
			seqStats, err := q.SelectXML(strings.NewReader(doc), Options{Collector: seqC}, nil)
			if err != nil {
				t.Fatal(err)
			}
			parC := NewCollector()
			parStats, err := q.SelectXML(strings.NewReader(doc), Options{Workers: 4, Collector: parC}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := seqC.Events.Load(), int64(seqStats.Events); got != want {
				t.Fatalf("%s doc %d: sequential collector Events = %d, Stats.Events = %d", name, i, got, want)
			}
			if got, want := seqC.Matches.Load(), int64(seqStats.Matches); got != want {
				t.Fatalf("%s doc %d: sequential collector Matches = %d, Stats.Matches = %d", name, i, got, want)
			}
			if seqC.Events.Load() != parC.Events.Load() || seqC.Matches.Load() != parC.Matches.Load() {
				t.Fatalf("%s doc %d: collector parity broken: seq events=%d matches=%d, parallel events=%d matches=%d",
					name, i, seqC.Events.Load(), seqC.Matches.Load(), parC.Events.Load(), parC.Matches.Load())
			}
			if parStats.Fallback == "" && parStats.Workers > 1 {
				if got := parC.SegmentEvents.Load() + parC.BoundaryEvents.Load(); got != parC.Events.Load() {
					t.Fatalf("%s doc %d: SegmentEvents+BoundaryEvents = %d, Events = %d", name, i, got, parC.Events.Load())
				}
				if parC.Chunks.Load() != int64(parStats.Chunks) {
					t.Fatalf("%s doc %d: collector Chunks = %d, Stats.Chunks = %d", name, i, parC.Chunks.Load(), parStats.Chunks)
				}
			}
			if parStats.Fallback == "short" && parStats.Chunks != 1 {
				t.Fatalf("%s doc %d: short fallback reports %d chunks", name, i, parStats.Chunks)
			}
		}
	}
}

// TestObsLatencyHistogramParity pins the latency histogram's counting
// convention on every instrumented emission path: exactly one observation
// per reported match — sequential coded, chunk-parallel, and earliest runs
// alike — with an earliest run additionally recording zero latency for
// every match (emission at the deciding event is the §14 contract).
func TestObsLatencyHistogramParity(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(53))
	for name, q := range map[string]*Query{
		"registerless": MustCompileRegex("a.*b", abc),
		"stackless":    MustCompileRegex(".*a.*b", abc),
		"stack":        MustCompileRegex(".*ab", abc),
	} {
		for i := 0; i < 15; i++ {
			doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(80)))
			for variant, opt := range map[string]Options{
				"sequential": {},
				"parallel":   {Workers: 4},
				"earliest":   {Earliest: true},
			} {
				c := NewCollector()
				opt.Collector = c
				stats, err := q.SelectXML(strings.NewReader(doc), opt, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := c.Latency.Count(), int64(stats.Matches); got != want {
					t.Fatalf("%s doc %d %s: latency count %d, matches %d", name, i, variant, got, want)
				}
				if variant == "earliest" && c.Latency.Sum() != 0 {
					t.Fatalf("%s doc %d: earliest run recorded latency sum %d, want 0", name, i, c.Latency.Sum())
				}
			}
		}
	}
}

// TestObsStatsCutPolicy checks the Stats surface of a parallel request: the
// policy name, the fallback reason for non-chunkable strategies, and the
// stack-depth histogram of the pushdown baseline.
func TestObsStatsCutPolicy(t *testing.T) {
	withProcs(t, 4)
	doc := "<a><a><b></b></a><b></b></a>"

	q := MustCompileRegex(".*a.*b", abc) // HAR: stackless machine, cuts at new minima
	c := NewCollector()
	stats, err := q.SelectXML(strings.NewReader(doc), Options{Workers: 2, Collector: c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Strategy != Stackless || stats.CutPolicy != "newmin" {
		t.Fatalf("stats = %+v, want stackless/newmin", stats)
	}
	if got := c.RunsByPolicy[core.CutNewMin].Load(); got != 1 {
		t.Fatalf("RunsByPolicy[newmin] = %d, want 1", got)
	}

	qs := MustCompileRegex(".*ab", abc) // not HAR: pushdown fallback
	c = NewCollector()
	stats, err = qs.SelectXML(strings.NewReader(doc), Options{Workers: 4, Collector: c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The pushdown is chunkable now (speculatively) but this stream is far
	// too deep for its chunk size: the run degrades sequentially and says
	// so ("deep", one chunk).
	if stats.Strategy != Stack || stats.CutPolicy != "boundeddepth" || stats.Fallback != "deep" || stats.Chunks != 1 {
		t.Fatalf("stack stats = %+v, want boundeddepth/deep on 1 chunk", stats)
	}
	if got := c.RunsByPolicy[core.CutBoundedDepth].Load(); got != 1 {
		t.Fatalf("RunsByPolicy[boundeddepth] = %d, want 1", got)
	}
	if c.StackFallbacks.Load() != 1 || c.SeqFallbacks.Load() != 1 {
		t.Fatalf("fallback counters: stack=%d seq=%d, want 1/1", c.StackFallbacks.Load(), c.SeqFallbacks.Load())
	}
	if c.StackPoolReuse.Load() == 0 {
		t.Fatal("pushdown run recorded no stack-pool activity")
	}
}

// TestObsMultiQueryCollector checks the MultiQuery accounting convention —
// every machine steps on every event, so Events counts events × queries in
// both modes — and that the parallel path times its merge phase.
func TestObsMultiQueryCollector(t *testing.T) {
	withProcs(t, 4)
	q1 := MustCompileRegex("a.*b", abc)
	q2 := MustCompileRegex(".*a.*b", abc)
	q3 := MustCompileRegex(".*ab", abc) // stack-only: sequential inside the fan-out
	mq, err := NewMultiQuery(q1, q2, q3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 10; i++ {
		doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(60)))
		seqC := NewCollector()
		seqStats, err := mq.SelectXML(strings.NewReader(doc), Options{Collector: seqC}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := seqC.Events.Load(), int64(3*seqStats.Events); got != want {
			t.Fatalf("doc %d: sequential multi Events = %d, want %d (events × queries)", i, got, want)
		}
		parC := NewCollector()
		_, err = mq.SelectXML(strings.NewReader(doc), Options{Workers: 4, Collector: parC}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seqC.Events.Load() != parC.Events.Load() || seqC.Matches.Load() != parC.Matches.Load() {
			t.Fatalf("doc %d: multi parity broken: seq events=%d matches=%d, parallel events=%d matches=%d",
				i, seqC.Events.Load(), seqC.Matches.Load(), parC.Events.Load(), parC.Matches.Load())
		}
		if parC.Phases[obs.PhaseMerge].Count.Load() != 1 {
			t.Fatalf("doc %d: merge phase observed %d times, want 1", i, parC.Phases[obs.PhaseMerge].Count.Load())
		}
	}
}

// TestObsCollectorSnapshotPublic exercises the public aliases: a collector
// accumulated through Options surfaces its numbers via Snapshot and the
// expvar-compatible String.
func TestObsCollectorSnapshotPublic(t *testing.T) {
	q := MustCompileRegex(".*a.*b", abc)
	c := NewCollector()
	stats, err := q.SelectXML(strings.NewReader("<a><a><b></b></a></a>"), Options{Collector: c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap ObsSnapshot = c.Snapshot()
	if snap.Counters["events"] != int64(stats.Events) {
		t.Fatalf("snapshot events = %d, want %d", snap.Counters["events"], stats.Events)
	}
	if s := c.String(); !strings.Contains(s, `"events":`) {
		t.Fatalf("String() = %q, want expvar-style JSON", s)
	}
}
