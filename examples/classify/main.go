// classify regenerates the Example 2.12 table (experiment T1) and prints
// the full classification of each row's language — the headline result of
// the characterization theorems.
package main

import (
	"fmt"
	"log"

	"stackless"
)

func main() {
	rows := []struct{ xpath, jsonpath, regex string }{
		{"/a//b", "$.a..b", "a.*b"},
		{"/a/b", "$.a.b", "ab"},
		{"//a//b", "$..a..b", ".*a.*b"},
		{"//a/b", "$..a.b", ".*ab"},
	}
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "✗"
	}
	fmt.Println("Example 2.12 over Γ = {a,b,c} — markup encoding:")
	fmt.Printf("  %-8s %-8s %-8s  %-13s %s\n", "XPath", "JSONPath", "RegEx", "Registerless?", "Stackless?")
	queries := make([]*stackless.Query, len(rows))
	for i, r := range rows {
		q, err := stackless.CompileRegex(r.regex, []string{"a", "b", "c"})
		if err != nil {
			log.Fatal(err)
		}
		queries[i] = q
		c := q.Classify()
		fmt.Printf("  %-8s %-8s %-8s  %-13s %s\n",
			r.xpath, r.jsonpath, r.regex, mark(c.Registerless), mark(c.StacklessQuery))
	}
	fmt.Println("\nterm encoding (Section 4.2, blind classes):")
	fmt.Printf("  %-8s  %-13s %s\n", "RegEx", "Registerless?", "Stackless?")
	for i, r := range rows {
		c := queries[i].Classify()
		fmt.Printf("  %-8s  %-13s %s\n", r.regex, mark(c.TermRegisterless), mark(c.TermStackless))
	}
	fmt.Println("\nunderlying syntactic classes:")
	for i, r := range rows {
		c := queries[i].Classify()
		fmt.Printf("  %-8s reversible=%v almost-reversible=%v R-trivial=%v HAR=%v E-flat=%v A-flat=%v\n",
			r.regex, c.Reversible, c.AlmostReversible, c.RTrivial, c.HAR, c.EFlat, c.AFlat)
	}
}
