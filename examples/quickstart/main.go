// Quickstart: compile an RPQ, see how the paper classifies it, and stream
// an XML document through the cheapest evaluator.
package main

import (
	"fmt"
	"log"
	"strings"

	"stackless"
)

func main() {
	// The query /a//b of Example 2.12: select b-nodes somewhere below an
	// a-root. Its path language a Γ*b is almost-reversible, so a plain
	// finite automaton evaluates it over the stream — no stack, no
	// registers.
	q, err := stackless.CompileXPath("/a//b", []string{"a", "b", "c"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s over Γ=%v\n", q, q.Alphabet())
	c := q.Classify()
	fmt.Printf("registerless=%v stackless=%v (term: %v/%v)\n\n",
		c.Registerless, c.StacklessQuery, c.TermRegisterless, c.TermStackless)

	doc := `<a>
  <b/>                 <!-- selected: path a·b -->
  <c><b/></c>          <!-- selected: path a·c·b -->
  <b><c/></b>          <!-- selected -->
  <a><b/></a>          <!-- selected: path a·a·b -->
</a>`
	stats, err := q.SelectXML(strings.NewReader(doc), stackless.Options{}, func(m stackless.Match) {
		fmt.Printf("  match: pos=%d depth=%d label=%s\n", m.Pos, m.Depth, m.Label)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrategy=%s events=%d matches=%d\n", stats.Strategy, stats.Events, stats.Matches)

	// Tree-language queries: does SOME branch match a·b*? Does EVERY branch?
	v, _ := stackless.CompileRegex("ab*", []string{"a", "b", "c"})
	el, _, _ := v.RecognizeEL(strings.NewReader("<a><b/><c/></a>"), stackless.Options{})
	al, _, _ := v.RecognizeAL(strings.NewReader("<a><b/><c/></a>"), stackless.Options{})
	fmt.Printf("\nab*: some branch=%v every branch=%v on <a><b/><c/></a>\n", el, al)
}
