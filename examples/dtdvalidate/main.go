// dtdvalidate demonstrates weak validation (Segoufin–Vianu, Section 4.1):
// given that the input stream is a well-formed document, can a DTD be
// validated without a stack? For path DTDs the answer is decided by the
// A-flatness (finite automaton) and HAR (depth-register automaton)
// criteria on the DTD's path language.
package main

import (
	"fmt"
	"log"
	"strings"

	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dtd"
	"stackless/internal/encoding"
)

func main() {
	// A fully recursive document grammar: doc → item*, item → (item|leaf)*,
	// leaf → ε.
	d := &dtd.PathDTD{
		Root: "doc",
		Prods: map[string]dtd.Production{
			"doc":  {Symbols: []string{"item"}},
			"item": {Symbols: []string{"item", "leaf"}},
			"leaf": {},
		},
	}
	rep, err := d.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DTD root=%s\n", d.Root)
	fmt.Printf("weak validation: registerless=%v stackless=%v (term: %v/%v)\n\n",
		rep.Registerless(), rep.Stackless(), rep.TermRegisterless(), rep.TermStackless())

	ev, kind, err := d.Validator()
	if err != nil {
		log.Fatal(err)
	}
	docs := []string{
		"<doc><item><leaf/><item><leaf/></item></item></doc>",
		"<doc><leaf/></doc>",             // leaf directly under doc: invalid
		"<doc><item><doc/></item></doc>", // doc below item: invalid
	}
	for _, x := range docs {
		ok, err := core.Recognize(ev, encoding.NewXMLScanner(strings.NewReader(x)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s %-12s valid=%v\n", x, kind, ok)
	}

	// The Figure 6 pitfall: a specialized DTD whose annotated automaton
	// looks A-flat, but whose projected language is not — the criterion
	// must be applied to the determinized, minimized projection.
	fmt.Println("\nFigure 6 specialized DTD:")
	s := dtd.Fig6()
	fmt.Printf("  naive A-flat check on annotated automaton: %v\n", s.NaiveAFlat())
	proj, err := s.ProjectedPathLanguage()
	if err != nil {
		log.Fatal(err)
	}
	an := classify.Analyze(proj)
	aflat, _ := an.AFlat()
	har, _ := an.HAR()
	fmt.Printf("  projected minimal automaton: %d states, A-flat=%v, HAR=%v\n",
		proj.NumStates(), aflat, har)
}
