// jsonstream queries a JSON document under the term encoding (Section
// 4.2): closing brackets do not reveal labels, so the *blind* syntactic
// classes govern what is possible. The example also shows a query that is
// registerless over XML but needs more under JSON — the cost of the term
// encoding's succinctness.
package main

import (
	"fmt"
	"log"
	"strings"

	"stackless"
)

const doc = `{
  "store": {
    "book": [
      {"title": 1, "price": 10, "author": {"name": 2}},
      {"title": 3, "price": 12},
      {"series": {"book": [{"title": 4}]}}
    ],
    "title": 99
  }
}`

func main() {
	labels := []string{"$", "store", "book", "item", "title", "price", "author", "name", "series"}

	// $..title — every title anywhere.
	q, err := stackless.CompileJSONPath("$..'title'", labels)
	if err != nil {
		log.Fatal(err)
	}
	c := q.Classify()
	fmt.Printf("%s: term-registerless=%v term-stackless=%v\n", q, c.TermRegisterless, c.TermStackless)
	stats, err := q.SelectJSON(strings.NewReader(doc), stackless.Options{}, func(m stackless.Match) {
		fmt.Printf("  match at pos=%d depth=%d\n", m.Pos, m.Depth)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy=%s matches=%d\n\n", stats.Strategy, stats.Matches)

	// $..book.item.title — titles directly inside a book list entry. The
	// child step makes this harder (compare //a/b in Example 2.12).
	q2, err := stackless.CompileJSONPath("$..'book'.'item'.'title'", labels)
	if err != nil {
		log.Fatal(err)
	}
	c2 := q2.Classify()
	fmt.Printf("%s: term-registerless=%v term-stackless=%v\n", q2, c2.TermRegisterless, c2.TermStackless)
	stats2, err := q2.SelectJSON(strings.NewReader(doc), stackless.Options{}, func(m stackless.Match) {
		fmt.Printf("  match at pos=%d depth=%d\n", m.Pos, m.Depth)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy=%s matches=%d\n\n", stats2.Strategy, stats2.Matches)

	// The Section 4.2 separation: an even number of a's on the path (the
	// language of the reversible Figure 2 automaton, written (b*ab*ab*)* in
	// the paper and (b|ab*a)* as an exact regex) is registerless over XML
	// but not even stackless over JSON.
	sep, err := stackless.CompileRegex("(b|ab*a)*", []string{"a", "b"})
	if err != nil {
		log.Fatal(err)
	}
	cs := sep.Classify()
	fmt.Printf("even-a's: markup registerless=%v, term stackless=%v — the cost of succinctness\n",
		cs.Registerless, cs.TermStackless)
}
