// xmlcatalog streams a large synthetic product catalog through the
// stackless engine and the classical stack baseline, comparing throughput
// and memory behaviour — the trade-off that motivates the paper (§1).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"stackless"
	"stackless/internal/gen"
)

func main() {
	const items = 200_000
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(7))
	if err := gen.WriteCatalogXML(&buf, rng, items, 6); err != nil {
		log.Fatal(err)
	}
	doc := buf.Bytes()
	fmt.Printf("catalog: %d items, %.1f MB of XML\n\n", items, float64(len(doc))/1e6)

	labels := []string{"catalog", "item", "name", "price", "category", "discount"}
	// //category//name: every name nested (arbitrarily deep) under a
	// category — HAR, hence stackless but not registerless.
	q, err := stackless.CompileXPath("//category//name", labels)
	if err != nil {
		log.Fatal(err)
	}
	c := q.Classify()
	fmt.Printf("query %s: registerless=%v stackless=%v\n\n", q, c.Registerless, c.StacklessQuery)

	run := func(name string, opt stackless.Options) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		stats, err := q.SelectXML(bytes.NewReader(doc), opt, nil)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		mbps := float64(len(doc)) / 1e6 / elapsed.Seconds()
		fmt.Printf("%-12s strategy=%-12s matches=%-8d %8.1f MB/s   allocs=%d\n",
			name, stats.Strategy, stats.Matches, mbps, after.Mallocs-before.Mallocs)
	}
	run("auto", stackless.Options{})
	run("stack", stackless.Options{ForceStack: true})

	fmt.Println("\nSame document under weak validation (Section 4.1): every path")
	fmt.Println("must match the catalog grammar — evaluated without a stack when")
	fmt.Println("the path language is A-flat.")
	v, err := stackless.CompileRegex(
		"'catalog'('item'('name'|'price'|'discount'|'category'+('name')?))?", labels)
	if err != nil {
		log.Fatal(err)
	}
	ok, stats, err := v.RecognizeAL(bytes.NewReader(doc), stackless.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid=%v strategy=%s\n", ok, stats.Strategy)
}
