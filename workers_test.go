package stackless

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"stackless/internal/encoding"
	"stackless/internal/gen"
)

// Options.Workers must never change observable results: matches, their
// order, and the Recognize verdicts are byte-identical to the sequential
// run for every strategy (chunk-parallel where the strategy supports it,
// silent sequential fallback where it does not).

// withProcs raises GOMAXPROCS for the duration of a test: worker counts
// are clamped to GOMAXPROCS, so tests asserting a real fan-out must run
// with enough (virtual) cores regardless of the host's.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func collectMatches(t *testing.T, q *Query, doc string, opt Options) ([]Match, Stats) {
	t.Helper()
	var out []Match
	stats, err := q.SelectXML(strings.NewReader(doc), opt, func(m Match) { out = append(out, m) })
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

func TestOptionsWorkersMatchesSequential(t *testing.T) {
	withProcs(t, 8)
	queries := map[string]*Query{
		"registerless": MustCompileRegex("a.*b", abc),
		"stackless":    MustCompileRegex(".*a.*b", abc),
		"stack":        MustCompileRegex(".*ab", abc), // pushdown: speculative or "deep" degrade
	}
	rng := rand.New(rand.NewSource(17))
	for name, q := range queries {
		for i := 0; i < 40; i++ {
			doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(60)))
			want, seqStats := collectMatches(t, q, doc, Options{})
			if seqStats.Workers != 1 {
				t.Fatalf("%s: sequential run reports %d workers", name, seqStats.Workers)
			}
			for _, w := range []int{2, 3, 8} {
				got, stats := collectMatches(t, q, doc, Options{Workers: w})
				if len(got) != len(want) {
					t.Fatalf("%s doc %d workers %d: %d matches, want %d", name, i, w, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%s doc %d workers %d: match %d = %+v, want %+v", name, i, w, j, got[j], want[j])
					}
				}
				if stats.Matches != len(want) || stats.Events != seqStats.Events {
					t.Fatalf("%s doc %d workers %d: stats %+v vs sequential %+v", name, i, w, stats, seqStats)
				}
				if stats.Workers != w {
					t.Fatalf("%s: parallel run reports %d workers, want %d", name, stats.Workers, w)
				}
			}
		}
	}
}

func TestOptionsWorkersRecognize(t *testing.T) {
	withProcs(t, 8)
	q := MustCompileRegex(".*a.*b", abc)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(40)))
		for _, rec := range []func(Options) (bool, Stats, error){
			func(o Options) (bool, Stats, error) { return q.RecognizeEL(strings.NewReader(doc), o) },
			func(o Options) (bool, Stats, error) { return q.RecognizeAL(strings.NewReader(doc), o) },
		} {
			want, _, err := rec(Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 8} {
				got, _, err := rec(Options{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("doc %d workers %d: %v, want %v", i, w, got, want)
				}
			}
		}
	}
}

func TestMultiQueryWorkersMatchesSequential(t *testing.T) {
	withProcs(t, 8)
	q1 := MustCompileRegex("a.*b", abc)
	q2 := MustCompileRegex(".*a.*b", abc)
	q3 := MustCompileRegex(".*ab", abc) // stack-only: sequential inside the fan-out
	mq, err := NewMultiQuery(q1, q2, q3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 30; i++ {
		doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(60)))
		var want []MultiMatch
		seqStats, err := mq.SelectXML(strings.NewReader(doc), Options{}, func(m MultiMatch) { want = append(want, m) })
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			var got []MultiMatch
			stats, err := mq.SelectXML(strings.NewReader(doc), Options{Workers: w}, func(m MultiMatch) { got = append(got, m) })
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("doc %d workers %d: %d matches, want %d", i, w, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("doc %d workers %d: match %d = %+v, want %+v (emission order must be preserved)", i, w, j, got[j], want[j])
				}
			}
			if stats.Events != seqStats.Events || stats.Workers != w {
				t.Fatalf("doc %d workers %d: stats %+v vs sequential %+v", i, w, stats, seqStats)
			}
			for qi := range stats.Matches {
				if stats.Matches[qi] != seqStats.Matches[qi] {
					t.Fatalf("doc %d workers %d: per-query matches %v vs %v", i, w, stats.Matches, seqStats.Matches)
				}
			}
		}
	}
}

// TestWorkersClampedToGOMAXPROCS: requesting more workers than cores runs
// with the effective count (extra chunks past the core count only cost
// join overhead — EXPERIMENTS.md), with matches unchanged and Stats
// reporting the clamped value.
func TestWorkersClampedToGOMAXPROCS(t *testing.T) {
	q := MustCompileRegex(".*a.*b", abc)
	rng := rand.New(rand.NewSource(31))
	doc := encoding.XMLString(gen.RandomTree(rng, abc, 60))
	withProcs(t, 8)
	want, _ := collectMatches(t, q, doc, Options{})

	withProcs(t, 1)
	got, stats := collectMatches(t, q, doc, Options{Workers: 8})
	if stats.Workers != 1 || stats.Fallback != "" || stats.Chunks != 1 {
		t.Fatalf("1 core, 8 requested: stats %+v, want a sequential run with Workers=1", stats)
	}
	if stats.Pipeline != PipelineCoded {
		t.Fatalf("stackless sequential run reports pipeline %q, want coded", stats.Pipeline)
	}
	if len(got) != len(want) {
		t.Fatalf("clamped run: %d matches, want %d", len(got), len(want))
	}

	withProcs(t, 2)
	got, stats = collectMatches(t, q, doc, Options{Workers: 8})
	if stats.Workers != 2 {
		t.Fatalf("2 cores, 8 requested: Stats.Workers = %d, want 2", stats.Workers)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("clamped parallel run: match %d = %+v, want %+v", j, got[j], want[j])
		}
	}

	mq, err := NewMultiQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	withProcs(t, 1)
	mstats, err := mq.SelectXML(strings.NewReader(doc), Options{Workers: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mstats.Workers != 1 {
		t.Fatalf("multi on 1 core: Workers = %d, want 1", mstats.Workers)
	}
	if mstats.Pipeline != PipelineCoded {
		t.Fatalf("multi sequential pipeline = %q, want coded", mstats.Pipeline)
	}
}

func TestWorkersMalformedInputStillRejected(t *testing.T) {
	withProcs(t, 4)
	q := MustCompileRegex("a.*b", abc)
	for _, doc := range []string{"<a><b></b>", "<a></a><b></b>"} {
		_, seqErr := q.SelectXML(strings.NewReader(doc), Options{}, nil)
		_, parErr := q.SelectXML(strings.NewReader(doc), Options{Workers: 4}, nil)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("doc %q: sequential err %v, parallel err %v", doc, seqErr, parErr)
		}
		if seqErr == nil {
			t.Fatalf("doc %q: malformed input accepted", doc)
		}
	}
}
