package stackless

import (
	"fmt"
	"strings"
)

// XPath and JSONPath front-ends for the downward-axis fragments of
// Example 2.12: child («/a», «.a») and descendant («//a», «..a») steps plus
// the «*» wildcard. These translate to path regexes:
//
//	/a//b   →  a.*b        $.a..b  →  a.*b
//	//a/b   →  .*ab        $..a.b  →  .*ab
//	/*/b    →  .b

// CompileXPath compiles an XPath expression of the downward fragment over
// the given alphabet. The expression must start with «/» or «//».
func CompileXPath(expr string, labels []string) (*Query, error) {
	rx, err := XPathToRegex(expr)
	if err != nil {
		return nil, err
	}
	q, err := CompileRegex(rx, labels)
	if err != nil {
		return nil, err
	}
	q.source = expr
	return q, nil
}

// CompileJSONPath compiles a JSONPath expression of the downward fragment.
// The expression must start with «$».
func CompileJSONPath(expr string, labels []string) (*Query, error) {
	rx, err := JSONPathToRegex(expr)
	if err != nil {
		return nil, err
	}
	q, err := CompileRegex(rx, labels)
	if err != nil {
		return nil, err
	}
	q.source = expr
	return q, nil
}

// XPathToRegex translates the downward XPath fragment to a path regex.
// Top-level unions are supported: «/a/b | /a/c» (RPQs are closed under
// union, so the result is still a single query).
func XPathToRegex(expr string) (string, error) {
	if parts := splitTopLevelUnion(expr); len(parts) > 1 {
		var alts []string
		for _, p := range parts {
			rx, err := XPathToRegex(p)
			if err != nil {
				return "", err
			}
			alts = append(alts, "("+rx+")")
		}
		return strings.Join(alts, "|"), nil
	}
	if !strings.HasPrefix(expr, "/") {
		return "", fmt.Errorf("stackless: XPath %q must start with / or //", expr)
	}
	var b strings.Builder
	rest := expr
	for len(rest) > 0 {
		descend := false
		switch {
		case strings.HasPrefix(rest, "//"):
			descend = true
			rest = rest[2:]
		case strings.HasPrefix(rest, "/"):
			rest = rest[1:]
		default:
			return "", fmt.Errorf("stackless: expected step separator in XPath at %q", rest)
		}
		name, remaining, err := readStep(rest, "/")
		if err != nil {
			return "", err
		}
		rest = remaining
		if descend {
			b.WriteString(".*")
		}
		writeStepRegex(&b, name)
	}
	if b.Len() == 0 {
		return "", fmt.Errorf("stackless: empty XPath")
	}
	return b.String(), nil
}

// splitTopLevelUnion splits on «|» and trims whitespace; quoting is not
// supported inside union arms (step names with literal | must be queried
// separately).
func splitTopLevelUnion(expr string) []string {
	if !strings.Contains(expr, "|") {
		return []string{expr}
	}
	parts := strings.Split(expr, "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// JSONPathToRegex translates the downward JSONPath fragment to a path
// regex. The root «$» maps to the document root node, so «$.a» selects
// children of the root named a only when the root itself is the synthetic
// JSON root: following Example 2.12 we treat «$.a» as the path «a» from the
// root's children — i.e. «$» matches the root and each «.step» descends.
func JSONPathToRegex(expr string) (string, error) {
	if parts := splitTopLevelUnion(expr); len(parts) > 1 {
		var alts []string
		for _, p := range parts {
			rx, err := JSONPathToRegex(p)
			if err != nil {
				return "", err
			}
			alts = append(alts, "("+rx+")")
		}
		return strings.Join(alts, "|"), nil
	}
	if !strings.HasPrefix(expr, "$") {
		return "", fmt.Errorf("stackless: JSONPath %q must start with $", expr)
	}
	rest := expr[1:]
	var b strings.Builder
	for len(rest) > 0 {
		descend := false
		switch {
		case strings.HasPrefix(rest, ".."):
			descend = true
			rest = rest[2:]
		case strings.HasPrefix(rest, "."):
			rest = rest[1:]
		default:
			return "", fmt.Errorf("stackless: expected step separator in JSONPath at %q", rest)
		}
		name, remaining, err := readStep(rest, ".")
		if err != nil {
			return "", err
		}
		rest = remaining
		if descend {
			b.WriteString(".*")
		}
		writeStepRegex(&b, name)
	}
	if b.Len() == 0 {
		return "", fmt.Errorf("stackless: empty JSONPath")
	}
	return b.String(), nil
}

func readStep(rest, sep string) (name, remaining string, err error) {
	if rest == "" {
		return "", "", fmt.Errorf("stackless: dangling step separator")
	}
	end := len(rest)
	for i := 0; i < len(rest); i++ {
		if strings.HasPrefix(rest[i:], sep) {
			end = i
			break
		}
	}
	name = rest[:end]
	if name == "" {
		return "", "", fmt.Errorf("stackless: empty step name")
	}
	// Predicates, functions and filters are outside the downward fragment;
	// treating «a[1]» as a node label would silently change the query. A
	// label that genuinely contains such characters can be quoted: «/'a['».
	if !(len(name) >= 2 && name[0] == '\'' && name[len(name)-1] == '\'') {
		if i := strings.IndexAny(name, "[]()@=?"); i >= 0 {
			return "", "", fmt.Errorf("stackless: step %q contains %q — predicates are not part of the downward fragment (quote the name to use it as a literal label)", name, name[i])
		}
	}
	return name, rest[end:], nil
}

func writeStepRegex(b *strings.Builder, name string) {
	if name == "*" {
		b.WriteString(".")
		return
	}
	// Accept pre-quoted step names ('multi word') by unquoting first.
	if len(name) >= 2 && name[0] == '\'' && name[len(name)-1] == '\'' {
		name = name[1 : len(name)-1]
	}
	if len(name) == 1 && isWordChar(name[0]) {
		b.WriteString(name)
		return
	}
	b.WriteByte('\'')
	b.WriteString(name)
	b.WriteByte('\'')
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
