package stackless

// The benchmark harness regenerates every experiment of DESIGN.md §4:
// one benchmark (or test) per paper table/figure plus the motivating
// throughput/memory sweeps. EXPERIMENTS.md records the measured shapes.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/dfa"
	"stackless/internal/dtd"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/paperfigs"
	"stackless/internal/parallel"
	"stackless/internal/rex"
	"stackless/internal/stackeval"
	"stackless/internal/tree"
	"stackless/internal/treeauto"
)

// --- shared fixtures ---

var fixtures struct {
	once       sync.Once
	catalogXML []byte           // ~2 MB catalog document
	abcDoc     []encoding.Event // random tree over {a,b,c}, ~200k events
	abcTree    *tree.Node
	deepDocs   map[int][]encoding.Event // depth → events, ~100k events each
}

func loadFixtures() {
	fixtures.once.Do(func() {
		rng := rand.New(rand.NewSource(2021))
		var buf bytes.Buffer
		if err := gen.WriteCatalogXML(&buf, rng, 20_000, 6); err != nil {
			panic(err)
		}
		fixtures.catalogXML = buf.Bytes()

		fixtures.abcTree = gen.RandomTree(rng, []string{"a", "b", "c"}, 100_000)
		fixtures.abcDoc = encoding.Markup(fixtures.abcTree)

		fixtures.deepDocs = map[int][]encoding.Event{}
		for _, depth := range []int{4, 64, 1024, 4096} {
			// ~100k events regardless of depth: chains of the given depth
			// with a,b,c labels glued under a root.
			root := tree.New("a")
			total := 0
			for total < 50_000 {
				c := gen.DeepChain(rng, []string{"a", "b", "c"}, depth)
				root.Children = append(root.Children, c)
				total += depth
			}
			fixtures.deepDocs[depth] = encoding.Markup(root)
		}
	})
}

func benchEvaluator(b *testing.B, ev core.Evaluator, events []encoding.Event) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Reset()
		for _, e := range events {
			ev.Step(e)
		}
		_ = ev.Accepting()
	}
	b.StopTimer()
	nsPerEvent := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(events))
	b.ReportMetric(nsPerEvent, "ns/event")
}

// --- T1: the Example 2.12 table ---
//
// For each row, benchmark the best evaluator the theorems allow next to
// the stack baseline on the same event stream. The verdict pattern
// (which strategies exist) is asserted by TestExample212EndToEnd.

func BenchmarkTable212(b *testing.B) {
	loadFixtures()
	for _, row := range paperfigs.Example212() {
		q := MustCompileRegex(row.Regex, abc)
		ev, st, err := q.queryEvaluator(MarkupEncoding, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/%s", row.XPath[1:], st), func(b *testing.B) {
			benchEvaluator(b, ev, fixtures.abcDoc)
		})
		b.Run(fmt.Sprintf("%s/stack", row.XPath[1:]), func(b *testing.B) {
			benchEvaluator(b, q.stackQuery(), fixtures.abcDoc)
		})
	}
}

// --- F1: Figure 1 / Example 2.9 ---
//
// The strict pattern is not stackless; the benchmark measures the
// Proposition 2.8 matcher (the stackless non-strict semantics) against the
// in-memory strict oracle on K_n trees.

func BenchmarkFig1Kn(b *testing.B) {
	pat := gen.Fig1Pattern()
	for _, n := range []int{8, 12, 16} {
		match, _ := gen.Fig1Pair(n, n/2)
		events := encoding.Markup(match)
		b.Run(fmt.Sprintf("pattern-matcher/n=%d", n), func(b *testing.B) {
			m := core.NewPatternMatcher(pat)
			benchEvaluator(b, m, events)
		})
		b.Run(fmt.Sprintf("strict-oracle/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tree.StrictlyContains(match, pat)
			}
		})
	}
}

// --- F2: Figure 2 ---
//
// The reversible automaton's language is registerless under markup; under
// the term encoding it is not even stackless, so the stack baseline is the
// only option there.

func BenchmarkFig2(b *testing.B) {
	loadFixtures()
	rng := rand.New(rand.NewSource(5))
	tr := gen.RandomTree(rng, []string{"a", "b"}, 100_000)
	markup := encoding.Markup(tr)
	term := encoding.Term(tr)
	q := MustCompileRegex(paperfigs.Fig2Regex, []string{"a", "b"})

	ev, st, err := q.queryEvaluator(MarkupEncoding, false)
	if err != nil || st != Registerless {
		b.Fatalf("Fig2 must be registerless under markup (err=%v st=%v)", err, st)
	}
	b.Run("markup/registerless", func(b *testing.B) { benchEvaluator(b, ev, markup) })
	b.Run("markup/stack", func(b *testing.B) { benchEvaluator(b, q.stackQuery(), markup) })
	if _, _, err := q.queryEvaluator(TermEncoding, false); err == nil {
		b.Fatal("Fig2 must NOT be stackless under the term encoding")
	}
	b.Run("term/stack-only", func(b *testing.B) { benchEvaluator(b, q.stackQuery(), term) })
}

// --- F3: Figure 3 (same languages as T1, deep-document variant) ---

func BenchmarkFig3DeepDocs(b *testing.B) {
	loadFixtures()
	events := fixtures.deepDocs[1024]
	for _, row := range paperfigs.Example212() {
		q := MustCompileRegex(row.Regex, abc)
		ev, st, err := q.queryEvaluator(MarkupEncoding, true)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/%v", row.Regex, st), func(b *testing.B) {
			benchEvaluator(b, ev, events)
		})
	}
}

// --- F4 / F5 / F7: fooling-tree construction ---
//
// The membership and indistinguishability claims are covered by tests in
// internal/gen; the benchmarks measure the generator cost as the pump
// exponent grows.

func BenchmarkFig4Build(b *testing.B) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3dRegex, paperfigs.GammaABC()))
	_, w := an.EFlat()
	for _, n := range []int{4, 6, 8} {
		e := gen.PumpExponent(n)
		b.Run(fmt.Sprintf("n=%d(e=%d)", n, e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, sp := gen.Fig4Trees(an.D, w, e)
				if s.Size() == 0 || sp.Size() == 0 {
					b.Fatal("empty fooling trees")
				}
			}
		})
	}
}

func BenchmarkFig5Build(b *testing.B) {
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3dRegex, paperfigs.GammaABC()))
	_, w := an.HAR()
	for _, e := range []int{6, 12, 24} { // e = PumpExponent(2k) explodes at k=3; sweep e directly
		b.Run(fmt.Sprintf("e=%d", e), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				r, rp := gen.Fig5Trees(an.D, w, e)
				size = r.Size() + rp.Size()
			}
			b.ReportMetric(float64(size), "nodes")
		})
	}
}

func BenchmarkFig7Build(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var an *classify.Analysis
	var w *classify.FlatWitness
	for {
		an = classify.Analyze(dfa.Random(rng, alphabet.Letters("ab"), 4))
		if ok, ww := an.BlindEFlat(); !ok {
			w = ww
			break
		}
	}
	for _, e := range []int{6, 12, 60} {
		b.Run(fmt.Sprintf("e=%d", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, sp, _ := gen.Fig7Trees(an.D, w, e)
				if s.Size() == 0 || sp.Size() == 0 {
					b.Fatal("empty fooling trees")
				}
			}
		})
	}
}

// --- F6: Figure 6 pipeline ---

func BenchmarkFig6Pipeline(b *testing.B) {
	s := dtd.Fig6()
	for i := 0; i < b.N; i++ {
		if s.NaiveAFlat() != true {
			b.Fatal("naive check changed")
		}
		proj, err := s.ProjectedPathLanguage()
		if err != nil {
			b.Fatal(err)
		}
		if ok, _ := classify.Analyze(proj).AFlat(); ok {
			b.Fatal("projection became A-flat")
		}
	}
}

// --- X1/X2: depth sweep — flat O(1) working state for the stackless
// machine versus Θ(depth) for the pushdown baseline. Each run reports its
// peak working-state size in machine words ("state-words").

func BenchmarkDepthSweepStackless(b *testing.B) {
	loadFixtures()
	q := MustCompileRegex(paperfigs.Fig3cRegex, abc) // HAR: stackless exists
	for _, depth := range []int{4, 64, 1024, 4096} {
		ev, st, err := q.queryEvaluator(MarkupEncoding, false)
		if err != nil || st != Stackless {
			b.Fatal("expected a stackless evaluator")
		}
		sl := ev.(*core.StacklessEvaluator)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			peak := 0
			sl.Reset()
			for _, e := range fixtures.deepDocs[depth] {
				sl.Step(e)
				if r := sl.Registers(); r > peak {
					peak = r
				}
			}
			benchEvaluator(b, ev, fixtures.deepDocs[depth])
			b.ReportMetric(float64(2*peak+2), "state-words")
		})
	}
}

func BenchmarkDepthSweepStack(b *testing.B) {
	loadFixtures()
	q := MustCompileRegex(paperfigs.Fig3cRegex, abc)
	for _, depth := range []int{4, 64, 1024, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			sq := stackeval.QL(q.automaton())
			peak := 0
			sq.Reset()
			for _, e := range fixtures.deepDocs[depth] {
				sq.Step(e)
				if d := sq.StackDepth(); d > peak {
					peak = d
				}
			}
			benchEvaluator(b, sq, fixtures.deepDocs[depth])
			b.ReportMetric(float64(peak+1), "state-words")
		})
	}
}

// --- X2: end-to-end over XML bytes (scanner + evaluator), with -benchmem
// showing the O(1)-register vs Θ(depth)-stack allocation difference. ---

func BenchmarkEndToEndCatalog(b *testing.B) {
	loadFixtures()
	q := MustCompileXPathB(b, "//category//name")
	for _, mode := range []struct {
		name string
		opt  Options
	}{{"auto", Options{}}, {"stack", Options{ForceStack: true}}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(fixtures.catalogXML)))
			for i := 0; i < b.N; i++ {
				if _, err := q.SelectXML(bytes.NewReader(fixtures.catalogXML), mode.opt, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// MustCompileXPathB compiles an XPath query for benchmarks.
func MustCompileXPathB(b *testing.B, expr string) *Query {
	b.Helper()
	q, err := CompileXPath(expr, []string{"catalog", "item", "name", "price", "category", "discount"})
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// --- X3: classification cost vs automaton size ---

func BenchmarkClassifySweep(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		rng := rand.New(rand.NewSource(int64(n)))
		ds := make([]*dfa.DFA, 16)
		for i := range ds {
			ds[i] = dfa.Random(rng, alphabet.Letters("ab"), n)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				an := classify.Analyze(ds[i%len(ds)])
				an.Report()
			}
		})
	}
}

// --- P1: Proposition 2.8 pattern matching ---

func BenchmarkPatternMatcher(b *testing.B) {
	loadFixtures()
	pat := tree.MustParse("a(b(c),b)")
	b.Run("stream", func(b *testing.B) {
		benchEvaluator(b, core.NewPatternMatcher(pat), fixtures.abcDoc)
	})
	b.Run("in-memory-oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tree.Contains(fixtures.abcTree, pat)
		}
	})
}

// --- P2: Propositions 2.3 / 2.13 ---

func BenchmarkProp23Conversion(b *testing.B) {
	d := core.Example26()
	for i := 0; i < b.N; i++ {
		if _, err := treeauto.FromRestrictedDRA(d, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProp213Decision(b *testing.B) {
	l := rex.MustCompile("a(a|b)*", alphabet.Letters("ab"))
	an := classify.Analyze(l)
	tag, err := core.RegisterlessQL(an)
	if err != nil {
		b.Fatal(err)
	}
	d := core.NewDRA(tag.Alphabet, tag.NumStates(), tag.Start, 0)
	copy(d.Accept, tag.Accept)
	for q := 0; q < tag.NumStates(); q++ {
		for a := 0; a < tag.Alphabet.Size(); a++ {
			d.SetForAllTests(q, a, false, 0, tag.OpenT[q][a])
			d.SetForAllTests(q, a, true, 0, tag.CloseT[q][a])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := treeauto.IsPathQuery(d, 1<<18)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// --- Tree-language recognition: synopsis automaton vs stack ---

func BenchmarkELRecognizers(b *testing.B) {
	loadFixtures()
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3aRegex, paperfigs.GammaABC()))
	syn, err := core.RegisterlessEL(an)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("synopsis-registerless", func(b *testing.B) {
		benchEvaluator(b, syn, fixtures.abcDoc)
	})
	b.Run("stack", func(b *testing.B) {
		benchEvaluator(b, stackeval.EL(an.D), fixtures.abcDoc)
	})
}

// --- Weak validation: DTD validators (Section 4.1) ---

func BenchmarkDTDValidation(b *testing.B) {
	d := &dtd.PathDTD{
		Root: "doc",
		Prods: map[string]dtd.Production{
			"doc":  {Symbols: []string{"item"}},
			"item": {Symbols: []string{"item", "leaf"}},
			"leaf": {},
		},
	}
	rng := rand.New(rand.NewSource(11))
	var build func(depth int) *tree.Node
	build = func(depth int) *tree.Node {
		n := tree.New("item")
		if depth > 0 {
			for i := 0; i < 2; i++ {
				n.Children = append(n.Children, build(depth-1))
			}
		} else {
			n.Children = append(n.Children, tree.New("leaf"))
		}
		return n
	}
	doc := tree.New("doc", build(14)) // ~32k items
	events := encoding.Markup(doc)
	_ = rng

	ev, kind, err := d.Validator()
	if err != nil {
		b.Fatal(err)
	}
	b.Run(kind, func(b *testing.B) { benchEvaluator(b, ev, events) })
	b.Run("stack", func(b *testing.B) {
		benchEvaluator(b, d.AsGeneral().NewStackValidator(), events)
	})
}

// --- Scanner throughput (parsing substrate) ---

func BenchmarkXMLScanner(b *testing.B) {
	loadFixtures()
	b.SetBytes(int64(len(fixtures.catalogXML)))
	for i := 0; i < b.N; i++ {
		src := encoding.NewXMLScanner(bytes.NewReader(fixtures.catalogXML))
		for {
			if _, err := src.Next(); err != nil {
				break
			}
		}
	}
}

func BenchmarkStdXMLBridge(b *testing.B) {
	loadFixtures()
	b.SetBytes(int64(len(fixtures.catalogXML)))
	for i := 0; i < b.N; i++ {
		src := encoding.NewStdXMLSource(bytes.NewReader(fixtures.catalogXML))
		for {
			if _, err := src.Next(); err != nil {
				break
			}
		}
	}
}

// --- Term encoding: under Γ ∪ {◁} the registerless machine resolves no
// labels on closing tags, matching the pushdown's advantage — the honest
// counterpoint to the markup-encoding overhead (see EXPERIMENTS.md). ---

func BenchmarkTermEncoding(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	tr := gen.RandomTree(rng, []string{"a", "b", "c"}, 100_000)
	events := encoding.Term(tr)
	q := MustCompileRegex(paperfigs.Fig3aRegex, abc) // blindly almost-reversible
	ev, st, err := q.queryEvaluator(TermEncoding, false)
	if err != nil || st != Registerless {
		b.Fatalf("aΓ*b should be term-registerless (err=%v)", err)
	}
	b.Run("blind-registerless", func(b *testing.B) { benchEvaluator(b, ev, events) })
	b.Run("stack", func(b *testing.B) { benchEvaluator(b, q.stackQuery(), events) })
}

// --- Multi-query single pass: parsing cost amortized across queries (the
// §1 SAX argument). ---

func BenchmarkMultiQueryCatalog(b *testing.B) {
	loadFixtures()
	labels := []string{"catalog", "item", "name", "price", "category", "discount"}
	exprs := []string{
		"'catalog''item''name'",
		".*'category'.*'name'",
		".*'discount'",
		"'catalog''item''price'",
	}
	for _, k := range []int{1, 2, 4} {
		qs := make([]*Query, k)
		for i := 0; i < k; i++ {
			var err error
			qs[i], err = CompileRegex(exprs[i], labels)
			if err != nil {
				b.Fatal(err)
			}
		}
		mq, err := NewMultiQuery(qs...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("queries=%d", k), func(b *testing.B) {
			b.SetBytes(int64(len(fixtures.catalogXML)))
			for i := 0; i < b.N; i++ {
				if _, err := mq.SelectXML(bytes.NewReader(fixtures.catalogXML), Options{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Multi-query product compilation (DESIGN.md §13) ---
//
// The product claim: merging compatible compiled machines into one product
// automaton with bitset accept masks makes the per-event stepping cost of a
// query set nearly independent of its size, where fan-out pays one table
// load per machine per event. Sandwich queries 'xi'.*'yk' over a 48-label
// grid keep the joint state space small at every size. Both modes run the
// same in-memory document through the sequential compiled pass; the
// fan-out/product ns/event ratio at 64 queries is the number quoted in
// EXPERIMENTS.md (BENCH_multi.json, regenerated by make bench-multi).

func BenchmarkMultiQueryProduct(b *testing.B) {
	labels := make([]string, 0, 48)
	for i := 0; i < 32; i++ {
		labels = append(labels, fmt.Sprintf("x%d", i))
	}
	for k := 0; k < 16; k++ {
		labels = append(labels, fmt.Sprintf("y%d", k))
	}
	rng := rand.New(rand.NewSource(2023))
	events := encoding.Markup(gen.RandomTree(rng, labels, 20_000))
	for _, nq := range []int{8, 64, 512} {
		qs := make([]*Query, 0, nq)
		for i := 0; i < 32 && len(qs) < nq; i++ {
			for k := 0; k < 16 && len(qs) < nq; k++ {
				qs = append(qs, MustCompileRegex(fmt.Sprintf("'x%d'.*'y%d'", i, k), labels))
			}
		}
		matchTotals := map[string]int{}
		for _, mode := range []struct {
			name string
			fan  bool
		}{{"product", false}, {"fanout", true}} {
			mq, err := NewMultiQuery(qs...)
			if err != nil {
				b.Fatal(err)
			}
			mq.noProduct = mode.fan
			b.Run(fmt.Sprintf("queries=%d/%s", nq, mode.name), func(b *testing.B) {
				src := encoding.NewSliceSource(events)
				src.Rewind()
				stats, err := mq.selectSource(src, MarkupEncoding, Options{}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Pipeline != PipelineCoded {
					b.Fatalf("%s mode left the compiled pipeline", mode.name)
				}
				if want := 1; mode.fan {
					want = 0
				} else if stats.ProductGroups != want {
					b.Fatalf("product mode planned %d groups, want 1 (cap blown?)", stats.ProductGroups)
				}
				total := 0
				for _, n := range stats.Matches {
					total += n
				}
				matchTotals[mode.name] = total
				if p, ok := matchTotals["product"]; ok {
					if f, ok := matchTotals["fanout"]; ok && p != f {
						b.Fatalf("modes disagree: product %d matches, fan-out %d", p, f)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src.Rewind()
					if _, err := mq.selectSource(src, MarkupEncoding, Options{}, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
			})
		}
	}
}

// --- Chunk-parallel evaluation (DESIGN.md §8) ---
//
// The speedup claim needs real cores: on GOMAXPROCS=1 the parallel runs
// only measure the orchestration overhead (see EXPERIMENTS.md). The match
// sets are byte-identical either way — asserted here on every iteration,
// and exhaustively by workers_test.go and internal/parallel.

func benchSelectWorkers(b *testing.B, q *Query, events []encoding.Event, workers int) {
	b.Helper()
	ev, _, err := q.queryEvaluator(MarkupEncoding, true)
	if err != nil {
		b.Fatal(err)
	}
	var want int
	if _, err := core.Select(ev, encoding.NewSliceSource(events), func(core.Match) { want++ }); err != nil {
		b.Fatal(err)
	}
	cm, ok := ev.(core.Chunkable)
	if !ok {
		b.Fatal("strategy is not chunkable")
	}
	pool := parallel.Shared()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		if workers <= 1 {
			if _, err := core.Select(ev, encoding.NewSliceSource(events), func(core.Match) { got++ }); err != nil {
				b.Fatal(err)
			}
		} else {
			parallel.Select(pool, cm, events, workers, func(core.Match) { got++ })
		}
		if got != want {
			b.Fatalf("workers=%d: %d matches, want %d", workers, got, want)
		}
	}
	b.StopTimer()
	nsPerEvent := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(events))
	b.ReportMetric(nsPerEvent, "ns/event")
}

// BenchmarkSelectParallelRegisterless sweeps worker counts for the tag-DFA
// strategy (vectorized all-states segment kernel) on the large-tree corpus.
func BenchmarkSelectParallelRegisterless(b *testing.B) {
	loadFixtures()
	q := MustCompileRegex(paperfigs.Fig3aRegex, abc)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSelectWorkers(b, q, fixtures.abcDoc, w)
		})
	}
}

// BenchmarkSelectParallelStackless sweeps worker counts for the stackless
// strategy (per-run record stacks in the segment kernel).
func BenchmarkSelectParallelStackless(b *testing.B) {
	loadFixtures()
	q := MustCompileRegex(paperfigs.Fig3cRegex, abc)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSelectWorkers(b, q, fixtures.abcDoc, w)
		})
	}
}

// BenchmarkSelectParallelDeep runs the worker sweep on the depth-4096
// corpus: deep documents stress the cut policies (few CutNewMin boundaries
// near the spikes) and the join's depth-delta accounting.
func BenchmarkSelectParallelDeep(b *testing.B) {
	loadFixtures()
	q := MustCompileRegex(paperfigs.Fig3cRegex, abc)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSelectWorkers(b, q, fixtures.deepDocs[4096], w)
		})
	}
}

// BenchmarkSelectParallelXML measures the end-to-end path (scan + chunk +
// join) through the public API on the catalog document.
func BenchmarkSelectParallelXML(b *testing.B) {
	loadFixtures()
	q := MustCompileXPathB(b, "//category//name")
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(fixtures.catalogXML)))
			for i := 0; i < b.N; i++ {
				if _, err := q.SelectXML(bytes.NewReader(fixtures.catalogXML), Options{Workers: w}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead pins the cost of the observability layer on the
// stackless kernel: collector=off is the production default (every hook a
// nil check, zero allocations — see TestObsDisabledZeroAllocs), collector=on
// is the fully instrumented run. The off numbers must track the plain
// BenchmarkSelectParallelStackless within noise.
func BenchmarkObsOverhead(b *testing.B) {
	loadFixtures()
	q := MustCompileRegex(paperfigs.Fig3cRegex, abc)
	events := fixtures.abcDoc
	ev, _, err := q.queryEvaluator(MarkupEncoding, true)
	if err != nil {
		b.Fatal(err)
	}
	cm, ok := ev.(core.Chunkable)
	if !ok {
		b.Fatal("strategy is not chunkable")
	}
	pool := parallel.Shared()
	for _, mode := range []struct {
		name string
		c    *Collector
	}{
		{"off", nil},
		{"on", NewCollector()},
	} {
		b.Run("seq/collector="+mode.name, func(b *testing.B) {
			src := encoding.NewSliceSource(events)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Rewind()
				if _, err := core.SelectObs(ev, mode.c, src, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
		b.Run("parallel4/collector="+mode.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parallel.SelectObs(pool, cm, events, 4, mode.c, nil)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
	}
}

// --- Compiled symbol-coded pipeline (DESIGN.md §11) ---
//
// Each benchmark runs one machine over the same buffered document through
// the per-event string pipeline and the batched coded pipeline; the
// ns/event ratio between the string/ and coded/ sub-benchmarks is the
// headline number recorded in BENCH_coded.json and EXPERIMENTS.md.

func benchSelectPipelines(b *testing.B, ev core.Evaluator, events []encoding.Event) {
	b.Helper()
	if !core.CodedCapable(ev) {
		b.Fatal("machine does not support the compiled pipeline")
	}
	var want int
	if _, err := core.Select(ev, encoding.NewSliceSource(events), func(core.Match) { want++ }); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		sel  func(core.Evaluator, encoding.Source, func(core.Match)) (int, error)
	}{
		{"string", core.Select},
		{"coded", core.SelectCoded},
	} {
		b.Run(mode.name, func(b *testing.B) {
			src := encoding.NewSliceSource(events)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Rewind()
				got := 0
				if _, err := mode.sel(ev, src, func(core.Match) { got++ }); err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("%d matches, want %d", got, want)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
	}
}

func codedBenchEvaluator(b *testing.B, regex string) core.Evaluator {
	b.Helper()
	q := MustCompileRegex(regex, abc)
	ev, _, err := q.queryEvaluator(MarkupEncoding, false)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkSelectCodedRegisterless: the compiled tag DFA (flat state×symbol
// table, branchless batch stepping) against its per-event twin.
func BenchmarkSelectCodedRegisterless(b *testing.B) {
	loadFixtures()
	benchSelectPipelines(b, codedBenchEvaluator(b, paperfigs.Fig3aRegex), fixtures.abcDoc)
}

// BenchmarkSelectCodedStackless: the compiled HAR evaluator (table-driven
// transitions, record stack pushes only on SCC changes).
func BenchmarkSelectCodedStackless(b *testing.B) {
	loadFixtures()
	benchSelectPipelines(b, codedBenchEvaluator(b, paperfigs.Fig3cRegex), fixtures.abcDoc)
}

// BenchmarkSelectCodedDeep: the stackless machine on the depth-4096 corpus —
// deep documents stress the record-stack side of the compiled step.
func BenchmarkSelectCodedDeep(b *testing.B) {
	loadFixtures()
	benchSelectPipelines(b, codedBenchEvaluator(b, paperfigs.Fig3cRegex), fixtures.deepDocs[4096])
}

// BenchmarkSelectCodedSynopsisEL: the synopsis machine's per-event coded
// step (lazy state discovery admits no dense table; StepBatch hoists the
// label resolution only).
func BenchmarkSelectCodedSynopsisEL(b *testing.B) {
	loadFixtures()
	an := classify.Analyze(rex.MustCompile(paperfigs.Fig3aRegex, paperfigs.GammaABC()))
	syn, err := core.RegisterlessEL(an)
	if err != nil {
		b.Fatal(err)
	}
	benchSelectPipelines(b, syn, fixtures.abcDoc)
}

// BenchmarkSelectCodedDRA: the table DRA's batched step (branchless
// depth/register comparison bits, direct table indexing).
func BenchmarkSelectCodedDRA(b *testing.B) {
	loadFixtures()
	benchSelectPipelines(b, core.Example26().Evaluator(), fixtures.abcDoc)
}

// --- Earliest emission (DESIGN.md §14). ---

// benchSelectEarliestPipelines runs the same document through the default
// string and coded drivers and the earliest driver, reporting ns/event for
// each — the price of the per-event latency contract against both current
// pipelines (EXPERIMENTS.md).
func benchSelectEarliestPipelines(b *testing.B, ev core.Evaluator, events []encoding.Event) {
	b.Helper()
	var want int
	if _, err := core.Select(ev, encoding.NewSliceSource(events), func(core.Match) { want++ }); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		sel  func(core.Evaluator, encoding.Source, func(core.Match)) (int, error)
	}{
		{"string", core.Select},
		{"coded", core.SelectCoded},
		{"earliest", core.SelectEarliest},
	} {
		b.Run(mode.name, func(b *testing.B) {
			src := encoding.NewSliceSource(events)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Rewind()
				got := 0
				if _, err := mode.sel(ev, src, func(core.Match) { got++ }); err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("%d matches, want %d", got, want)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
	}
}

// BenchmarkSelectEarliestRegisterless: the tag DFA under the earliest
// contract — per-event string stepping against the batched coded path it
// gives up.
func BenchmarkSelectEarliestRegisterless(b *testing.B) {
	loadFixtures()
	benchSelectEarliestPipelines(b, codedBenchEvaluator(b, paperfigs.Fig3aRegex), fixtures.abcDoc)
}

// BenchmarkSelectEarliestStackless: the HAR evaluator under the earliest
// contract.
func BenchmarkSelectEarliestStackless(b *testing.B) {
	loadFixtures()
	benchSelectEarliestPipelines(b, codedBenchEvaluator(b, paperfigs.Fig3cRegex), fixtures.abcDoc)
}

// BenchmarkSelectEarliestEarlyExit: the flag payoff. An out-of-alphabet
// root decides the run at event one — the earliest driver drains the rest
// of the document at one kind-test per event, while the default drivers
// keep stepping their dead machine to the end.
func BenchmarkSelectEarliestEarlyExit(b *testing.B) {
	loadFixtures()
	events := make([]encoding.Event, 0, len(fixtures.abcDoc)+2)
	events = append(events, encoding.Event{Kind: encoding.Open, Label: "zz"})
	events = append(events, fixtures.abcDoc...)
	events = append(events, encoding.Event{Kind: encoding.Close, Label: "zz"})
	benchSelectEarliestPipelines(b, codedBenchEvaluator(b, paperfigs.Fig3aRegex), events)
}

// --- Pushdown fallback (DESIGN.md §16) ---
//
// The rebuilt pushdown against (a) the pre-rebuild per-event machine it
// replaced and (b) the stackless coded path it falls back from. The
// acceptance bar recorded in BENCH_stack.json and EXPERIMENTS.md: the coded
// pushdown stays within 2× of the stackless coded ns/event on the same
// query and document, so taking the fallback no longer means falling off
// the compiled pipeline.

// legacyStack is the pre-§16 pushdown baseline: per-event label resolution,
// a growable []int state stack with a parallel aliveness stack, and a
// branch on aliveness at every open. The differential fuzzers in
// internal/encoding hold the rebuilt machine behaviourally identical to it.
type legacyStack struct {
	d     *dfa.DFA
	res   *alphabet.Resolver
	state int
	alive bool
	stk   []int
	alv   []bool
}

func newLegacyStack(d *dfa.DFA) *legacyStack {
	return &legacyStack{d: d, res: alphabet.NewResolver(d.Alphabet), state: d.Start, alive: true}
}

func (m *legacyStack) Reset() {
	m.state, m.alive = m.d.Start, true
	m.stk, m.alv = m.stk[:0], m.alv[:0]
}

func (m *legacyStack) Step(e encoding.Event) {
	if e.Kind == encoding.Open {
		m.stk = append(m.stk, m.state)
		m.alv = append(m.alv, m.alive)
		s, ok := m.res.ID(e.Label)
		if !ok || !m.alive {
			m.alive = false
			return
		}
		m.state = m.d.Delta[m.state][s]
		return
	}
	if n := len(m.stk); n > 0 {
		m.state, m.alive = m.stk[n-1], m.alv[n-1]
		m.stk, m.alv = m.stk[:n-1], m.alv[:n-1]
	}
}

func (m *legacyStack) Accepting() bool { return m.alive && m.d.Accept[m.state] }

func benchStackPipelines(b *testing.B, q *Query, events []encoding.Event) {
	b.Helper()
	d := q.automaton()
	pd := stackeval.QL(d)
	var want int
	if _, err := core.Select(pd, encoding.NewSliceSource(events), func(core.Match) { want++ }); err != nil {
		b.Fatal(err)
	}

	b.Run("legacy", func(b *testing.B) {
		m := newLegacyStack(d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			got := 0
			for _, e := range events {
				m.Step(e)
				if e.Kind == encoding.Open && m.Accepting() {
					got++
				}
			}
			if got != want {
				b.Fatalf("%d matches, want %d", got, want)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
	})

	for _, mode := range []struct {
		name string
		sel  func(core.Evaluator, encoding.Source, func(core.Match)) (int, error)
	}{
		{"string", core.Select},
		{"coded", core.SelectCoded},
	} {
		b.Run(mode.name, func(b *testing.B) {
			src := encoding.NewSliceSource(events)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Rewind()
				got := 0
				if _, err := mode.sel(pd, src, func(core.Match) { got++ }); err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("%d matches, want %d", got, want)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
		})
	}

	// The fall-from path: the same query through the stackless coded
	// pipeline — the denominator of the ≤2× contract.
	sl, st, err := q.queryEvaluator(MarkupEncoding, false)
	if err != nil || st != Stackless {
		b.Fatalf("expected a stackless evaluator (err=%v st=%v)", err, st)
	}
	b.Run("stackless-coded", func(b *testing.B) {
		src := encoding.NewSliceSource(events)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.Rewind()
			got := 0
			if _, err := core.SelectCoded(sl, src, func(core.Match) { got++ }); err != nil {
				b.Fatal(err)
			}
			if got != want {
				b.Fatalf("%d matches, want %d", got, want)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/event")
	})
}

// BenchmarkSelectStack: the pushdown family on the large random tree.
func BenchmarkSelectStack(b *testing.B) {
	loadFixtures()
	benchStackPipelines(b, MustCompileRegex(paperfigs.Fig3cRegex, abc), fixtures.abcDoc)
}

// BenchmarkSelectStackDeep: the depth-4096 corpus — long open and close
// cascades keep the pool's free list hot and the legacy baseline's append
// path honest.
func BenchmarkSelectStackDeep(b *testing.B) {
	loadFixtures()
	benchStackPipelines(b, MustCompileRegex(paperfigs.Fig3cRegex, abc), fixtures.deepDocs[4096])
}

// --- Post-selection extension: the stack-based subtree-witness query. ---

func BenchmarkPostSelection(b *testing.B) {
	loadFixtures()
	p, err := CompilePostQuery("'catalog''item'", "discount",
		[]string{"catalog", "item", "name", "price", "category"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(fixtures.catalogXML)))
	for i := 0; i < b.N; i++ {
		if _, err := p.SelectXML(bytes.NewReader(fixtures.catalogXML), nil); err != nil {
			b.Fatal(err)
		}
	}
}
