package stackless

import (
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"stackless/internal/core"
	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/parallel"
)

// Differential battery for the earliest-emission contract (DESIGN.md §14):
// Options.Earliest must never change the observable result — matches,
// order, event counts, Recognize-style errors — against the default coded
// run AND against the pushdown oracle (ForceStack), across every strategy
// family and every worker count. What it may change is *when* a match is
// emitted, and that direction is pinned too: the earliest driver reports
// each match at the exact event deciding it, never later than the default
// pipeline does.

// earliestQueries spans the strategy families: registerless (tag DFA,
// exact flags), stackless (exact flags), and the pushdown fallback (safe
// approximation only).
func earliestQueries(t *testing.T) map[string]*Query {
	t.Helper()
	return map[string]*Query{
		"registerless": MustCompileRegex("a.*b", abc),
		"stackless":    MustCompileRegex(".*a.*b", abc),
		"stack":        MustCompileRegex(".*ab", abc), // not chunkable, no flags
	}
}

// TestEarliestMatchesOracle: sequential earliest runs agree with the
// default pipeline and the pushdown oracle on random documents, and the
// Stats report the right mode and pipeline.
func TestEarliestMatchesOracle(t *testing.T) {
	wantMode := map[string]EarliestMode{
		"registerless": EarliestExact,
		"stackless":    EarliestExact,
		"stack":        EarliestApprox,
	}
	rng := rand.New(rand.NewSource(23))
	for name, q := range earliestQueries(t) {
		for i := 0; i < 60; i++ {
			doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(60)))
			want, defStats := collectMatches(t, q, doc, Options{})
			oracle, _ := collectMatches(t, q, doc, Options{ForceStack: true})
			got, stats := collectMatches(t, q, doc, Options{Earliest: true})
			if defStats.Earliest != EarliestOff {
				t.Fatalf("%s: default run reports earliest mode %v", name, defStats.Earliest)
			}
			if stats.Earliest != wantMode[name] {
				t.Fatalf("%s: earliest mode %v, want %v", name, stats.Earliest, wantMode[name])
			}
			if stats.Pipeline != PipelineString {
				t.Fatalf("%s: earliest run on pipeline %v, want %v", name, stats.Pipeline, PipelineString)
			}
			if stats.Events != defStats.Events {
				t.Fatalf("%s doc %d: earliest counted %d events, default %d", name, i, stats.Events, defStats.Events)
			}
			if len(got) != len(want) || len(got) != len(oracle) {
				t.Fatalf("%s doc %d: %d matches (earliest) vs %d (default) vs %d (oracle)", name, i, len(got), len(want), len(oracle))
			}
			for j := range want {
				if got[j] != want[j] || got[j] != oracle[j] {
					t.Fatalf("%s doc %d match %d: %+v (earliest) vs %+v (default) vs %+v (oracle)", name, i, j, got[j], want[j], oracle[j])
				}
			}
		}
	}
}

// TestEarliestWorkers: Workers ∈ {1, 2, GOMAXPROCS} with Earliest set
// still produce the sequential match set in document order; fanned-out
// chunkable runs degrade to the safe approximation, non-chunkable ones
// keep their sequential mode.
func TestEarliestWorkers(t *testing.T) {
	withProcs(t, 8)
	rng := rand.New(rand.NewSource(29))
	for name, q := range earliestQueries(t) {
		for i := 0; i < 30; i++ {
			doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(80)))
			want, _ := collectMatches(t, q, doc, Options{})
			for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				got, stats := collectMatches(t, q, doc, Options{Earliest: true, Workers: w})
				if stats.Earliest == EarliestOff {
					t.Fatalf("%s workers %d: earliest run reports mode off", name, w)
				}
				if stats.Workers > 1 && stats.Earliest != EarliestApprox {
					t.Fatalf("%s workers %d: fanned-out run reports mode %v, want %v", name, w, stats.Earliest, EarliestApprox)
				}
				if len(got) != len(want) {
					t.Fatalf("%s doc %d workers %d: %d matches, want %d", name, i, w, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%s doc %d workers %d: match %d = %+v, want %+v", name, i, w, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestEarliestEmissionPosition pins the latency contract itself: wrapping
// the source in a counter, every earliest-mode match is emitted at exactly
// the event that decides it — consumed = 2·Pos + 2 − Depth, the index of
// the node's Open plus one — and never later than the default pipeline
// emits the same match.
func TestEarliestEmissionPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for name, q := range earliestQueries(t) {
		for i := 0; i < 40; i++ {
			events := encoding.Markup(gen.RandomTree(rng, abc, 1+rng.Intn(120)))
			var earliestAt, defaultAt []int
			src := encoding.Counting(encoding.NewSliceSource(events))
			if _, err := q.selectSource(src, MarkupEncoding, Options{Earliest: true}, func(m Match) {
				earliestAt = append(earliestAt, src.Consumed())
				if want := 2*m.Pos + 2 - m.Depth; src.Consumed() != want {
					t.Fatalf("%s doc %d: match %+v emitted after %d events, deciding event is %d", name, i, m, src.Consumed(), want)
				}
			}); err != nil {
				t.Fatal(err)
			}
			src = encoding.Counting(encoding.NewSliceSource(events))
			if _, err := q.selectSource(src, MarkupEncoding, Options{}, func(m Match) {
				defaultAt = append(defaultAt, src.Consumed())
			}); err != nil {
				t.Fatal(err)
			}
			if len(earliestAt) != len(defaultAt) {
				t.Fatalf("%s doc %d: %d matches (earliest) vs %d (default)", name, i, len(earliestAt), len(defaultAt))
			}
			for j := range earliestAt {
				if earliestAt[j] > defaultAt[j] {
					t.Fatalf("%s doc %d match %d: earliest emitted after %d events, default after %d", name, i, j, earliestAt[j], defaultAt[j])
				}
			}
		}
	}
}

// TestEarliestAdversarialCuts: the chunk-parallel engine with a cut forced
// at every interior position still reproduces the earliest driver's match
// set — earliest emission and chunking compose through the document-order
// join.
func TestEarliestAdversarialCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for name, q := range earliestQueries(t) {
		ev, _, err := q.queryEvaluator(MarkupEncoding, true)
		if err != nil {
			t.Fatal(err)
		}
		cm, ok := ev.(core.Chunkable)
		if !ok {
			continue // the pushdown fallback cannot be chunked
		}
		for i := 0; i < 20; i++ {
			events := encoding.Markup(gen.RandomTree(rng, abc, 1+rng.Intn(40)))
			var want []Match
			if _, err := q.selectSource(encoding.NewSliceSource(events), MarkupEncoding, Options{Earliest: true}, func(m Match) {
				want = append(want, m)
			}); err != nil {
				t.Fatal(err)
			}
			for cut := 1; cut < len(events); cut++ {
				var got []core.Match
				parallel.SelectAt(parallel.Shared(), cm, events, []int{cut}, func(m core.Match) { got = append(got, m) })
				if len(got) != len(want) {
					t.Fatalf("%s doc %d cut %d: %d matches, want %d", name, i, cut, len(got), len(want))
				}
				for j := range want {
					if got[j].Pos != want[j].Pos || got[j].Depth != want[j].Depth || got[j].Label != want[j].Label {
						t.Fatalf("%s doc %d cut %d: match %d = %+v, want %+v", name, i, cut, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestEarliestMultiQuery: earliest mode on a query set — exact only when
// every member carries flags, the safe approximation as soon as one
// doesn't or the run fans out; the per-query match sets never change.
func TestEarliestMultiQuery(t *testing.T) {
	withProcs(t, 8)
	exact, err := NewMultiQuery(MustCompileRegex("a.*b", abc), MustCompileRegex("a.*c", abc))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewMultiQuery(MustCompileRegex("a.*b", abc), MustCompileRegex(".*ab", abc))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct {
		name string
		mq   *MultiQuery
		want EarliestMode
	}{
		{"all-exact", exact, EarliestExact},
		{"mixed", mixed, EarliestApprox},
	} {
		for i := 0; i < 30; i++ {
			doc := encoding.XMLString(gen.RandomTree(rng, abc, 1+rng.Intn(60)))
			collect := func(opt Options) (map[int][]Match, MultiStats) {
				out := map[int][]Match{}
				stats, err := tc.mq.SelectXML(strings.NewReader(doc), opt, func(m MultiMatch) {
					out[m.Query] = append(out[m.Query], m.Match)
				})
				if err != nil {
					t.Fatal(err)
				}
				return out, stats
			}
			want, defStats := collect(Options{})
			if defStats.Earliest != EarliestOff {
				t.Fatalf("%s: default multi run reports mode %v", tc.name, defStats.Earliest)
			}
			got, stats := collect(Options{Earliest: true})
			if stats.Earliest != tc.want {
				t.Fatalf("%s: earliest mode %v, want %v", tc.name, stats.Earliest, tc.want)
			}
			gotW, statsW := collect(Options{Earliest: true, Workers: 4})
			if statsW.Workers > 1 && statsW.Earliest != EarliestApprox {
				t.Fatalf("%s: fanned-out multi run reports mode %v", tc.name, statsW.Earliest)
			}
			for qn := range want {
				for _, g := range []map[int][]Match{got, gotW} {
					if len(g[qn]) != len(want[qn]) {
						t.Fatalf("%s query %d: %d matches, want %d", tc.name, qn, len(g[qn]), len(want[qn]))
					}
					for j := range want[qn] {
						if g[qn][j] != want[qn][j] {
							t.Fatalf("%s query %d match %d: %+v, want %+v", tc.name, qn, j, g[qn][j], want[qn][j])
						}
					}
				}
			}
		}
	}
}
