package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, err strings.Builder
	code = run(args, &out, &err)
	return code, out.String(), err.String()
}

// TestBadModFails proves the gate can fail: the fixture module's StepBatch
// parks a fresh slice in a field every call and must be flagged, while the
// stack-only SelectBatch and the partial-annotated SimulateSegmentCoded
// must not be.
func TestBadModFails(t *testing.T) {
	code, out, stderr := runCmd(t, "-dir", "testdata/badmod", "-pkgs", ".", "-v")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "StepBatch allocates") {
		t.Errorf("StepBatch violation not reported:\n%s", out)
	}
	if !strings.Contains(out, "SelectBatch is escape-free") {
		t.Errorf("clean SelectBatch not confirmed:\n%s", out)
	}
	if strings.Contains(out, "SimulateSegmentCoded allocates") {
		t.Errorf("annotated escape was gated:\n%s", out)
	}
	if !strings.Contains(out, "exempt in plain kernel SimulateSegmentCoded") {
		t.Errorf("exempt escape not listed under -v:\n%s", out)
	}
	if !strings.Contains(out, "violation(s)") {
		t.Errorf("violation count missing:\n%s", out)
	}
}

// TestJSONSchema locks the -json output to the shared diagjson shape:
// exactly the five agreed keys per record.
func TestJSONSchema(t *testing.T) {
	code, out, stderr := runCmd(t, "-dir", "testdata/badmod", "-pkgs", ".", "-json")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s%s", code, out, stderr)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(records) == 0 {
		t.Fatal("-json produced no records for the failing module")
	}
	for _, r := range records {
		for _, key := range []string{"file", "line", "analyzer", "kind", "message"} {
			if _, ok := r[key]; !ok {
				t.Errorf("record missing %q: %v", key, r)
			}
		}
		if len(r) != 5 {
			t.Errorf("record has %d keys, want exactly 5: %v", len(r), r)
		}
		if r["analyzer"] != "allocgate" || r["kind"] != "escape" {
			t.Errorf("unexpected analyzer/kind: %v", r)
		}
	}
}

// TestProbeSelfTest removes the probe from the build: the gate must refuse
// to report a (vacuous) pass and exit 2.
func TestProbeSelfTest(t *testing.T) {
	code, out, stderr := runCmd(t, "-dir", "testdata/badmod", "-pkgs", ".", "-noprobe")
	if code != 2 {
		t.Fatalf("exit %d, want 2 when the probe is missing:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(stderr, "self-test failed") {
		t.Errorf("self-test failure not explained:\n%s", stderr)
	}
}

// TestEngineKernelsClean runs the real gate: every //treelint:plain kernel
// in internal/core and internal/encoding must be escape-free modulo its
// annotated lines.
func TestEngineKernelsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the kernel packages; skipped in -short")
	}
	code, out, stderr := runCmd(t, "-dir", "../..")
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "plain kernel(s) escape-free") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCmd(t, "-nope"); code != 2 || stderr == "" {
		t.Errorf("bad flag: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, "positional"); code != 2 || !strings.Contains(stderr, "no arguments") {
		t.Errorf("positional arg: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, "-dir", "testdata"); code != 2 || !strings.Contains(stderr, "module root") {
		t.Errorf("non-module dir: exit %d, stderr %q", code, stderr)
	}
}
