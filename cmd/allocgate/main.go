// Command allocgate is the static zero-allocation gate for the hot batch
// kernels: the compiler-escape-analysis backstop behind treelint's
// allocfree analyzer. It rebuilds the engine's kernel packages under
// -gcflags='-m -m' and fails if the body of any function annotated
// //treelint:plain contains a value the compiler reports as escaping
// ("escapes to heap" / "moved to heap"). The AST analyzer reasons about
// allocation *forms*; this gate asks the compiler what actually reaches
// the heap after inlining and escape analysis, so the two disagree exactly
// where it matters (a composite literal that stays on the stack passes
// here, a laundered interface conversion fails here).
//
// The plumbing is deliberately paranoid, mirroring cmd/bcegate: the module
// is copied to a scratch directory and salted so the build cache cannot
// swallow diagnostics, and a probe function written to always escape is
// injected into the build — if the probe's escape does not surface, the
// gate exits 2 rather than reporting a vacuous pass. Deliberate,
// documented allocations are exempted by a //treelint:partial directive on
// the allocation's line (or the line above it), the same escape hatch the
// allocfree analyzer honors.
//
//	allocgate                    # gate ./internal/core and ./internal/encoding
//	allocgate -v                 # list every escape, including exempted ones
//	allocgate -json              # machine-readable violations (diagjson schema)
//	allocgate -dir m -pkgs ./... # gate another module
//
// Exit status: 0 when every //treelint:plain body is escape-free (modulo
// annotated lines), 1 when a plain kernel allocates, 2 on build or
// plumbing errors (including a missed probe).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"stackless/internal/diagjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// escapeRe matches one top-level escape diagnostic from -m -m. The flow
// explanation lines repeat the file:line:col prefix with an indented
// message, so the message group requires a non-space start.
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (\S.*)$`)

const probeFile = "zz_allocgate_probe.go"

// kernel is one //treelint:plain function: the file it lives in
// (module-relative, slash-separated) and its body's line range.
type kernel struct {
	file       string
	name       string
	start, end int
}

// escape is one compiler-reported heap allocation.
type escape struct {
	file string
	line int
	msg  string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("allocgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to gate")
	pkgsFlag := fs.String("pkgs", "./internal/core,./internal/encoding,./internal/stackeval", "comma-separated package dirs holding the kernels")
	verbose := fs.Bool("v", false, "list every escape, including exempt and out-of-kernel ones")
	jsonOut := fs.Bool("json", false, "emit violations as a diagjson record array on stdout")
	noProbe := fs.Bool("noprobe", false, "skip probe injection so the self-test must trip (exercises the vacuous-pass guard)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "allocgate: no arguments expected")
		return 2
	}
	pkgs := strings.Split(*pkgsFlag, ",")

	fail := func(err error) int {
		fmt.Fprintln(stderr, "allocgate:", err)
		return 2
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		return fail(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return fail(fmt.Errorf("%s is not a module root: %w", *dir, err))
	}

	// Copy the module to scratch so salting never touches the real tree.
	tmp, err := os.MkdirTemp("", "allocgate")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(tmp)
	if err := copyModule(root, tmp); err != nil {
		return fail(err)
	}

	// Salt every non-test .go file of the target packages so the build
	// cache cannot swallow the diagnostics, and inject the self-test probe
	// into the first package.
	salt := fmt.Sprintf("// allocgate salt %d %d\n", os.Getpid(), time.Now().UnixNano())
	for i, p := range pkgs {
		pdir := filepath.Join(tmp, filepath.FromSlash(strings.TrimPrefix(p, "./")))
		if err := saltPackage(pdir, salt); err != nil {
			return fail(err)
		}
		if i == 0 && !*noProbe {
			if err := writeProbe(pdir); err != nil {
				return fail(err)
			}
		}
	}

	// Rebuild with escape-analysis diagnostics on and harvest them.
	cmd := exec.Command("go", append([]string{"build", "-gcflags=./...=-m -m"}, pkgs...)...)
	cmd.Dir = tmp
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fail(fmt.Errorf("go build: %v\n%s", err, out.String()))
	}
	var escapes []escape
	seen := map[escape]bool{} // -m -m repeats diagnostics across build passes
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		e := escape{file: filepath.ToSlash(m[1]), line: n, msg: strings.TrimSuffix(msg, ":")}
		if seen[e] {
			continue
		}
		seen[e] = true
		escapes = append(escapes, e)
	}

	// Self-test: the probe is written to always escape, so its diagnostic
	// must be in the harvest — otherwise the -m pipeline itself is broken
	// and a green result would mean nothing.
	probeSeen := false
	for _, e := range escapes {
		if path.Base(e.file) == probeFile {
			probeSeen = true
		}
	}
	if !probeSeen {
		return fail(fmt.Errorf("self-test failed: the probe's escape did not surface; -m diagnostics are not reaching the gate (%d lines harvested)", len(escapes)))
	}

	// Locate every plain kernel body and every //treelint:partial line in
	// the scratch copy (line numbers match the original: the salt is
	// appended at EOF).
	var kernels []kernel
	exempt := map[string]map[int]bool{} // file -> lines carrying a partial directive
	for _, p := range pkgs {
		ks, err := scanKernels(tmp, strings.TrimPrefix(p, "./"), exempt)
		if err != nil {
			return fail(err)
		}
		kernels = append(kernels, ks...)
	}
	sort.Slice(kernels, func(i, j int) bool {
		if kernels[i].file != kernels[j].file {
			return kernels[i].file < kernels[j].file
		}
		return kernels[i].start < kernels[j].start
	})
	if len(kernels) == 0 {
		return fail(fmt.Errorf("no //treelint:plain kernels found under %s", *pkgsFlag))
	}

	// exemptAt mirrors the analyzer's HasDirective: a directive on the
	// diagnostic's line or the line above it.
	exemptAt := func(file string, line int) bool {
		for f, lines := range exempt {
			if strings.HasSuffix(file, f) {
				return lines[line] || lines[line-1]
			}
		}
		return false
	}

	violations := 0
	exempted := 0
	var records []diagjson.Record
	for _, k := range kernels {
		clean := true
		for _, e := range escapes {
			if !strings.HasSuffix(e.file, k.file) || e.line < k.start || e.line > k.end {
				continue
			}
			if exemptAt(e.file, e.line) {
				exempted++
				if *verbose {
					fmt.Fprintf(stdout, "note: %s:%d: exempt in plain kernel %s: %s\n", k.file, e.line, k.name, e.msg)
				}
				continue
			}
			clean = false
			violations++
			if *jsonOut {
				records = append(records, diagjson.Record{
					File:     k.file,
					Line:     e.line,
					Analyzer: "allocgate",
					Kind:     "escape",
					Message:  fmt.Sprintf("plain kernel %s allocates: %s", k.name, e.msg),
				})
			} else {
				fmt.Fprintf(stdout, "%s:%d: plain kernel %s allocates: %s\n", k.file, e.line, k.name, e.msg)
			}
		}
		if clean && *verbose {
			fmt.Fprintf(stdout, "%s:%d: plain kernel %s is escape-free\n", k.file, k.start, k.name)
		}
	}
	if *jsonOut {
		if err := diagjson.Write(stdout, records); err != nil {
			return fail(err)
		}
	}
	if violations > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "allocgate: %d violation(s)\n", violations)
		}
		return 1
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "allocgate: %d plain kernel(s) escape-free, %d annotated escape(s) exempt\n", len(kernels), exempted)
	}
	return 0
}

// copyModule copies the module tree at src into dst, skipping VCS state.
func copyModule(src, dst string) error {
	return filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
}

// saltPackage appends a cache-busting comment to every non-test .go file in
// dir (non-recursive: one package).
func saltPackage(dir, salt string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		if _, err := f.WriteString("\n" + salt); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeProbe drops a function the escape analyzer provably must report
// into the package at dir: returning the address of a local always moves
// it to the heap.
func writeProbe(dir string) error {
	pkg, err := packageName(dir)
	if err != nil {
		return err
	}
	src := fmt.Sprintf(`package %s

// allocgateProbe returns the address of its local: the compiler must move
// x to the heap, so the probe's diagnostic proves the -m pipeline works.
func allocgateProbe(n int) *int {
	x := n + 1
	return &x
}
`, pkg)
	return os.WriteFile(filepath.Join(dir, probeFile), []byte(src), 0o644)
}

// packageName parses the package clause of the first buildable .go file in
// dir.
func packageName(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	fset := token.NewFileSet()
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly)
		if err != nil {
			continue
		}
		return f.Name.Name, nil
	}
	return "", fmt.Errorf("no .go files in %s", dir)
}

// scanKernels parses the package at root/rel, returns every //treelint:plain
// function with its body line range, and records the line of every
// //treelint:partial directive into exempt.
func scanKernels(root, rel string, exempt map[string]map[int]bool) ([]kernel, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []kernel
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == probeFile {
			continue
		}
		relFile := path.Join(filepath.ToSlash(rel), name)
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "//treelint:partial"); ok &&
					(rest == "" || rest[0] == ' ' || rest[0] == '\t') {
					if exempt[relFile] == nil {
						exempt[relFile] = map[int]bool{}
					}
					exempt[relFile][fset.Position(c.Pos()).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isPlainMarked(fn) {
				continue
			}
			out = append(out, kernel{
				file:  relFile,
				name:  fn.Name.Name,
				start: fset.Position(fn.Body.Pos()).Line,
				end:   fset.Position(fn.Body.End()).Line,
			})
		}
	}
	return out, nil
}

// isPlainMarked reports whether the function's doc comment carries
// //treelint:plain.
func isPlainMarked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//treelint:plain"); ok &&
			(rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}
