// Package badmod is the allocgate negative fixture: a miniature kernel
// package whose //treelint:plain StepBatch allocates per batch, so the
// gate must fail on it. If allocgate ever reports this module clean, the
// gate is broken.
package badmod

// M is a toy machine with the same flat-table shape as the real kernels.
type M struct {
	tab   []int32
	state int32
	sink  []int32
}

// StepBatch copies the batch into a fresh heap slice every call: the
// escape the gate must catch (m.sink outlives the call, so the make
// cannot stay on the stack).
//
//treelint:plain
func (m *M) StepBatch(batch []int32) {
	buf := make([]int32, len(batch))
	copy(buf, batch)
	for _, e := range buf {
		m.state = m.tab[int32(len(m.tab)-1)&(m.state+e)]
	}
	m.sink = buf
}

// SelectBatch is the well-formed counterpart: it appends into the caller's
// buffer and keeps everything on the stack, so it must come out clean.
//
//treelint:plain
func (m *M) SelectBatch(batch []int32, hits []int32) []int32 {
	st := m.state
	for i := 0; i < len(batch); i++ {
		st = m.tab[int32(len(m.tab)-1)&(st+batch[i])]
		if st < 0 {
			hits = append(hits, int32(i))
		}
	}
	m.state = st
	return hits
}

// SimulateSegmentCoded allocates deliberately on an annotated line, the
// documented escape hatch: exempt, not a violation.
//
//treelint:plain
func (m *M) SimulateSegmentCoded(batch []int32) []int32 {
	//treelint:partial fixture: per-segment exit vector, exercises the exemption path
	exits := make([]int32, len(batch))
	for i, e := range batch {
		exits[i] = m.tab[int32(len(m.tab)-1)&e]
	}
	return exits
}
