// Command classify prints the full syntactic classification of a path
// query (Definitions 3.4, 3.6, 3.9 and their blind variants) and the
// derived feasibility verdicts of Theorems 3.1, 3.2, B.1 and B.2.
//
// Usage:
//
//	classify -regex 'a.*b' -alphabet a,b,c
//	classify -table            # print the Example 2.12 table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stackless"
)

func main() {
	var (
		regex = flag.String("regex", "", "path query as a regular expression")
		xpath = flag.String("xpath", "", "path query in the downward XPath fragment")
		alpha = flag.String("alphabet", "", "comma-separated label alphabet Γ")
		table = flag.Bool("table", false, "print the Example 2.12 table and exit")
	)
	flag.Parse()

	if *table {
		printTable()
		return
	}

	var labels []string
	if *alpha != "" {
		labels = strings.Split(*alpha, ",")
	}
	var q *stackless.Query
	var err error
	switch {
	case *regex != "":
		q, err = stackless.CompileRegex(*regex, labels)
	case *xpath != "":
		q, err = stackless.CompileXPath(*xpath, labels)
	default:
		err = fmt.Errorf("one of -regex or -xpath is required (or -table)")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
	fmt.Printf("query: %s over %v\n%s", q, q.Alphabet(), q.Report())
	if why := q.Explain(); len(why) > 0 {
		fmt.Println("why:")
		for _, line := range why {
			fmt.Printf("  - %s\n", line)
		}
	}
}

// printTable regenerates the Example 2.12 table from the decision
// procedures — the paper's headline summary.
func printTable() {
	rows := []struct{ xpath, jsonpath, regex string }{
		{"/a//b", "$.a..b", "a.*b"},
		{"/a/b", "$.a.b", "ab"},
		{"//a//b", "$..a..b", ".*a.*b"},
		{"//a/b", "$..a.b", ".*ab"},
	}
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "✗"
	}
	fmt.Println("Example 2.12 (over Γ = {a,b,c}):")
	fmt.Printf("%-10s %-10s %-10s %-14s %-11s %-16s %-14s\n",
		"XPath", "JSONPath", "RegEx", "Registerless?", "Stackless?", "Term-registerless?", "Term-stackless?")
	for _, r := range rows {
		q, err := stackless.CompileRegex(r.regex, []string{"a", "b", "c"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "classify:", err)
			os.Exit(1)
		}
		c := q.Classify()
		fmt.Printf("%-10s %-10s %-10s %-14s %-11s %-16s %-14s\n",
			r.xpath, r.jsonpath, r.regex,
			mark(c.Registerless), mark(c.StacklessQuery),
			mark(c.TermRegisterless), mark(c.TermStackless))
	}
}
