// Command classify prints the full syntactic classification of a path
// query (Definitions 3.4, 3.6, 3.9 and their blind variants) and the
// derived feasibility verdicts of Theorems 3.1, 3.2, B.1 and B.2.
//
// Usage:
//
//	classify -regex 'a.*b' -alphabet a,b,c
//	classify -table            # print the Example 2.12 table
//
// The exit status is 0 on success, 1 when the query fails to compile
// (the error goes to stderr), and 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"stackless"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		regex = fs.String("regex", "", "path query as a regular expression")
		xpath = fs.String("xpath", "", "path query in the downward XPath fragment")
		alpha = fs.String("alphabet", "", "comma-separated label alphabet Γ")
		table = fs.Bool("table", false, "print the Example 2.12 table and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *table {
		return printTable(stdout, stderr)
	}

	var labels []string
	if *alpha != "" {
		labels = strings.Split(*alpha, ",")
	}
	var q *stackless.Query
	var err error
	switch {
	case *regex != "" && *xpath != "":
		fmt.Fprintln(stderr, "classify: -regex and -xpath are mutually exclusive")
		return 2
	case *regex != "":
		q, err = stackless.CompileRegex(*regex, labels)
	case *xpath != "":
		q, err = stackless.CompileXPath(*xpath, labels)
	default:
		fmt.Fprintln(stderr, "classify: one of -regex or -xpath is required (or -table)")
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "classify:", err)
		return 1
	}
	fmt.Fprintf(stdout, "query: %s over %v\n%s", q, q.Alphabet(), q.Report())
	if why := q.Explain(); len(why) > 0 {
		fmt.Fprintln(stdout, "why:")
		for _, line := range why {
			fmt.Fprintf(stdout, "  - %s\n", line)
		}
	}
	return 0
}

// printTable regenerates the Example 2.12 table from the decision
// procedures — the paper's headline summary.
func printTable(stdout, stderr io.Writer) int {
	rows := []struct{ xpath, jsonpath, regex string }{
		{"/a//b", "$.a..b", "a.*b"},
		{"/a/b", "$.a.b", "ab"},
		{"//a//b", "$..a..b", ".*a.*b"},
		{"//a/b", "$..a.b", ".*ab"},
	}
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "✗"
	}
	fmt.Fprintln(stdout, "Example 2.12 (over Γ = {a,b,c}):")
	fmt.Fprintf(stdout, "%-10s %-10s %-10s %-14s %-11s %-16s %-14s\n",
		"XPath", "JSONPath", "RegEx", "Registerless?", "Stackless?", "Term-registerless?", "Term-stackless?")
	for _, r := range rows {
		q, err := stackless.CompileRegex(r.regex, []string{"a", "b", "c"})
		if err != nil {
			fmt.Fprintln(stderr, "classify:", err)
			return 1
		}
		c := q.Classify()
		fmt.Fprintf(stdout, "%-10s %-10s %-10s %-14s %-11s %-16s %-14s\n",
			r.xpath, r.jsonpath, r.regex,
			mark(c.Registerless), mark(c.StacklessQuery),
			mark(c.TermRegisterless), mark(c.TermStackless))
	}
	return 0
}
