package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, err strings.Builder
	code = run(args, &out, &err)
	return code, out.String(), err.String()
}

func TestClassifyRegex(t *testing.T) {
	code, out, stderr := runCmd(t, "-regex", "a.*b", "-alphabet", "a,b,c")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "query:") {
		t.Errorf("missing report:\n%s", out)
	}
}

func TestClassifyTable(t *testing.T) {
	code, out, _ := runCmd(t, "-table")
	if code != 0 || !strings.Contains(out, "Example 2.12") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

// TestClassifyBadQuery: compile failures exit non-zero with the error on
// stderr and nothing on stdout.
func TestClassifyBadQuery(t *testing.T) {
	for _, args := range [][]string{
		{"-regex", "a(*", "-alphabet", "a,b"},
		{"-xpath", "///", "-alphabet", "a,b"},
		{"-xpath", "//a[", "-alphabet", "a,b"},
	} {
		code, out, stderr := runCmd(t, args...)
		if code != 1 {
			t.Errorf("%v: exit %d, want 1", args, code)
		}
		if !strings.Contains(stderr, "classify:") {
			t.Errorf("%v: stderr %q lacks the error", args, stderr)
		}
		if out != "" {
			t.Errorf("%v: unexpected stdout %q", args, out)
		}
	}
}

func TestClassifyUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-regex", "a", "-xpath", "//a"},
		{"-frobnicate"},
	} {
		code, _, stderr := runCmd(t, args...)
		if code != 2 || stderr == "" {
			t.Errorf("%v: exit %d, stderr %q, want usage failure", args, code, stderr)
		}
	}
}
