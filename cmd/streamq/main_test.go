package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// Golden CLI tests: exit codes, the stats line shape (including -workers
// and the fallback annotations), and the -stats JSON snapshot.

// withProcs raises GOMAXPROCS so the -workers flag is not clamped away on
// single-core CI boxes (Options.Workers is capped at GOMAXPROCS).
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func runStreamq(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func wantGolden(t *testing.T, got, goldenFile string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", goldenFile))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output mismatch vs testdata/%s:\ngot:\n%s\nwant:\n%s", goldenFile, got, want)
	}
}

func TestRunGolden(t *testing.T) {
	withProcs(t, 4)
	doc := filepath.Join("testdata", "doc.xml")
	for _, tc := range []struct {
		name   string
		args   []string
		golden string
	}{
		{"sequential", []string{"-regex", "a.*b", "-alphabet", "a,b,c", doc}, "select.golden"},
		{"workers", []string{"-regex", "a.*b", "-alphabet", "a,b,c", "-workers", "4", doc}, "select_workers.golden"},
		{"stack", []string{"-regex", "a.*b", "-alphabet", "a,b,c", "-stack", "-quiet", doc}, "select_stack.golden"},
		{"fallback", []string{"-regex", ".*ab", "-alphabet", "a,b,c", "-workers", "4", "-quiet", doc}, "select_fallback.golden"},
		{"multi", []string{"-queries", "a.*b;.*a;a.*c", "-alphabet", "a,b,c", doc}, "select_multi.golden"},
		{"earliest", []string{"-regex", "a.*b", "-alphabet", "a,b,c", "-earliest", doc}, "select_earliest.golden"},
		{"multi earliest", []string{"-queries", "a.*b;.*a;a.*c", "-alphabet", "a,b,c", "-earliest", doc}, "select_multi_earliest.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, out, stderr := runStreamq(t, "", tc.args...)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			wantGolden(t, out, tc.golden)
		})
	}
}

func TestRunStdin(t *testing.T) {
	code, out, stderr := runStreamq(t, "<a><b></b></a>", "-regex", "a.*b", "-alphabet", "a,b,c")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "match pos=1 depth=2 label=b\n") ||
		!strings.Contains(out, "strategy=registerless events=4 matches=1 workers=1 chunks=1 pipeline=coded\n") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunExitCodes(t *testing.T) {
	doc := filepath.Join("testdata", "doc.xml")
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"no query", []string{doc}, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"missing file", []string{"-regex", "a", "-alphabet", "a", "no-such-file.xml"}, 1},
		{"nostack rejects", []string{"-regex", ".*ab", "-alphabet", "a,b,c", "-nostack", doc}, 1},
		{"bad multi query", []string{"-queries", "a.*b;(", "-alphabet", "a,b,c", doc}, 2},
		{"classify needs single", []string{"-queries", "a.*b;.*a", "-alphabet", "a,b,c", "-classify", doc}, 2},
		{"ok", []string{"-regex", "a.*b", "-alphabet", "a,b,c", "-quiet", doc}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runStreamq(t, "", tc.args...)
			if code != tc.code {
				t.Fatalf("exit %d, want %d", code, tc.code)
			}
		})
	}
}

func TestRunMalformedInput(t *testing.T) {
	code, _, stderr := runStreamq(t, "<a><b></b>", "-regex", "a.*b", "-alphabet", "a,b,c")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
}

// TestRunStatsShape checks -stats: the stats line is followed by one JSON
// object with the snapshot's counter/phase/histogram sections, and the
// counters agree with the stats line.
func TestRunStatsShape(t *testing.T) {
	doc := filepath.Join("testdata", "doc.xml")
	for _, args := range [][]string{
		{"-regex", "a.*b", "-alphabet", "a,b,c", "-quiet", "-stats", doc},
		{"-regex", "a.*b", "-alphabet", "a,b,c", "-quiet", "-stats", "-workers", "4", doc},
	} {
		code, out, stderr := runStreamq(t, "", args...)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		jsonStart := strings.Index(out, "{")
		if jsonStart < 0 {
			t.Fatalf("no JSON snapshot in output:\n%s", out)
		}
		var snap struct {
			Counters   map[string]int64           `json:"counters"`
			Phases     map[string]json.RawMessage `json:"phases"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		}
		if err := json.Unmarshal([]byte(out[jsonStart:]), &snap); err != nil {
			t.Fatalf("snapshot is not valid JSON: %v\n%s", err, out[jsonStart:])
		}
		if snap.Counters["events"] != 10 || snap.Counters["matches"] != 2 {
			t.Errorf("snapshot counters events=%d matches=%d, want 10/2", snap.Counters["events"], snap.Counters["matches"])
		}
		for _, key := range []string{"split", "simulate", "join", "merge"} {
			if _, ok := snap.Phases[key]; !ok {
				t.Errorf("snapshot missing phase %q", key)
			}
		}
		for _, key := range []string{"depth", "registers", "stack_depth", "queue_depth", "latency"} {
			if _, ok := snap.Histograms[key]; !ok {
				t.Errorf("snapshot missing histogram %q", key)
			}
		}
	}
}

func TestRunPprofWritesProfiles(t *testing.T) {
	doc := filepath.Join("testdata", "doc.xml")
	prefix := filepath.Join(t.TempDir(), "prof")
	code, _, stderr := runStreamq(t, "", "-regex", "a.*b", "-alphabet", "a,b,c", "-quiet", "-pprof", prefix, doc)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		fi, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("profile %s not written: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", suffix)
		}
	}
}

func TestRunClassify(t *testing.T) {
	code, out, stderr := runStreamq(t, "", "-regex", "a.*b", "-alphabet", "a,b,c", "-classify")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.HasPrefix(out, "query: ") {
		t.Errorf("unexpected classify output:\n%s", out)
	}
}
