// Command streamq compiles a path query, classifies it, and streams a
// document through the cheapest evaluator the characterization theorems
// allow, printing the selected nodes.
//
// Usage:
//
//	streamq -xpath '/a//b' -alphabet a,b,c file.xml
//	streamq -regex 'a.*b' -alphabet a,b,c -stack file.xml
//	streamq -jsonpath '$..title' -alphabet '$,store,book,item,title' -json data.json
//	streamq -regex 'a.*b' -alphabet a,b,c -workers 4 -stats file.xml
//	streamq -queries 'a.*b;.*a;a.*c' -alphabet a,b,c file.xml
//
// With no file argument the document is read from standard input. -queries
// evaluates several regex queries in one streaming pass (compatible
// compiled machines are merged into product automata, DESIGN.md §13),
// printing each match with the index of the query that selected it. -stats
// prints the observability collector's JSON snapshot after the run;
// -earliest requests the earliest-emission latency contract (each match is
// printed at the event that decides it, and the stats line reports the
// earliest mode that actually ran); -pprof PREFIX writes CPU and heap
// profiles to PREFIX.cpu.pprof and PREFIX.heap.pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"stackless"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("streamq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		regex     = fs.String("regex", "", "path query as a regular expression over labels")
		queries   = fs.String("queries", "", "semicolon-separated regex queries evaluated together in one pass")
		xpath     = fs.String("xpath", "", "path query in the downward XPath fragment")
		jsonpath  = fs.String("jsonpath", "", "path query in the downward JSONPath fragment")
		alpha     = fs.String("alphabet", "", "comma-separated label alphabet Γ (labels in the query are added automatically)")
		jsonIn    = fs.Bool("json", false, "input is JSON (term encoding)")
		termIn    = fs.Bool("term", false, "input is brace notation a{b{}} (term encoding)")
		stack     = fs.Bool("stack", false, "force the stack baseline")
		noStack   = fs.Bool("nostack", false, "fail instead of falling back to the stack")
		classify  = fs.Bool("classify", false, "print the classification report and exit")
		quiet     = fs.Bool("quiet", false, "print only the final statistics")
		workers   = fs.Int("workers", 1, "evaluate chunk-parallel with this many workers (buffers the stream; >1 requires a chunkable strategy, otherwise runs sequentially)")
		earliest  = fs.Bool("earliest", false, "earliest emission: report each match at the event that decides it, never at a batch boundary (trades the coded pipeline's throughput)")
		statsFlag = fs.Bool("stats", false, "print the metrics collector's JSON snapshot after the run")
		pprofPfx  = fs.String("pprof", "", "write CPU and heap profiles to PREFIX.cpu.pprof and PREFIX.heap.pprof")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var labels []string
	if *alpha != "" {
		labels = strings.Split(*alpha, ",")
	}
	var q *stackless.Query
	var mq *stackless.MultiQuery
	if *queries != "" {
		exprs := strings.Split(*queries, ";")
		qs := make([]*stackless.Query, len(exprs))
		for i, expr := range exprs {
			var err error
			if qs[i], err = stackless.CompileRegex(expr, labels); err != nil {
				fmt.Fprintf(stderr, "streamq: query %q: %v\n", expr, err)
				return 2
			}
		}
		var err error
		if mq, err = stackless.NewMultiQuery(qs...); err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 2
		}
	} else {
		var err error
		if q, err = compile(*regex, *xpath, *jsonpath, labels); err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 2
		}
	}

	if *classify {
		if q == nil {
			fmt.Fprintln(stderr, "streamq: -classify needs a single query")
			return 2
		}
		fmt.Fprintf(stdout, "query: %s over %v\n%s", q, q.Alphabet(), q.Report())
		return 0
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	if *pprofPfx != "" {
		cpu, err := os.Create(*pprofPfx + ".cpu.pprof")
		if err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 1
		}
		defer cpu.Close()
		if err := pprof.StartCPUProfile(cpu); err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
		defer func() {
			heap, err := os.Create(*pprofPfx + ".heap.pprof")
			if err != nil {
				fmt.Fprintln(stderr, "streamq:", err)
				return
			}
			defer heap.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(heap); err != nil {
				fmt.Fprintln(stderr, "streamq:", err)
			}
		}()
	}

	opt := stackless.Options{ForceStack: *stack, ForbidStack: *noStack, Workers: *workers, Earliest: *earliest}
	if *statsFlag {
		opt.Collector = stackless.NewCollector()
	}
	if mq != nil {
		report := func(m stackless.MultiMatch) {
			if !*quiet {
				fmt.Fprintf(stdout, "match query=%d pos=%d depth=%d label=%s\n", m.Query, m.Pos, m.Depth, m.Label)
			}
		}
		var stats stackless.MultiStats
		var err error
		switch {
		case *jsonIn:
			stats, err = mq.SelectJSON(in, opt, report)
		case *termIn:
			stats, err = mq.SelectTerm(in, opt, report)
		default:
			stats, err = mq.SelectXML(in, opt, report)
		}
		if err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 1
		}
		total := 0
		for _, n := range stats.Matches {
			total += n
		}
		fmt.Fprintf(stdout, "queries=%d events=%d matches=%d workers=%d productgroups=%d",
			len(stats.Matches), stats.Events, total, stats.Workers, stats.ProductGroups)
		if stats.Pipeline != "" {
			fmt.Fprintf(stdout, " pipeline=%s", stats.Pipeline)
		}
		if stats.Earliest != stackless.EarliestOff {
			fmt.Fprintf(stdout, " earliest=%s", stats.Earliest)
		}
		fmt.Fprintln(stdout)
		if *statsFlag {
			if err := opt.Collector.Snapshot().WriteJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "streamq:", err)
				return 1
			}
		}
		return 0
	}

	report := func(m stackless.Match) {
		if !*quiet {
			fmt.Fprintf(stdout, "match pos=%d depth=%d label=%s\n", m.Pos, m.Depth, m.Label)
		}
	}
	var stats stackless.Stats
	var err error
	switch {
	case *jsonIn:
		stats, err = q.SelectJSON(in, opt, report)
	case *termIn:
		stats, err = q.SelectTerm(in, opt, report)
	default:
		stats, err = q.SelectXML(in, opt, report)
	}
	if err != nil {
		fmt.Fprintln(stderr, "streamq:", err)
		return 1
	}
	fmt.Fprintf(stdout, "strategy=%s events=%d matches=%d workers=%d chunks=%d", stats.Strategy, stats.Events, stats.Matches, stats.Workers, stats.Chunks)
	if stats.Pipeline != "" {
		fmt.Fprintf(stdout, " pipeline=%s", stats.Pipeline)
	}
	if stats.Earliest != stackless.EarliestOff {
		fmt.Fprintf(stdout, " earliest=%s", stats.Earliest)
	}
	if stats.CutPolicy != "" {
		fmt.Fprintf(stdout, " cutpolicy=%s", stats.CutPolicy)
	}
	if stats.Fallback != "" {
		fmt.Fprintf(stdout, " fallback=%s", stats.Fallback)
	}
	fmt.Fprintln(stdout)
	if *statsFlag {
		if err := opt.Collector.Snapshot().WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "streamq:", err)
			return 1
		}
	}
	return 0
}

func compile(regex, xpath, jsonpath string, labels []string) (*stackless.Query, error) {
	switch {
	case regex != "":
		return stackless.CompileRegex(regex, labels)
	case xpath != "":
		return stackless.CompileXPath(xpath, labels)
	case jsonpath != "":
		return stackless.CompileJSONPath(jsonpath, labels)
	}
	return nil, fmt.Errorf("one of -regex, -xpath, -jsonpath is required")
}
