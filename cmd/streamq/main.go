// Command streamq compiles a path query, classifies it, and streams a
// document through the cheapest evaluator the characterization theorems
// allow, printing the selected nodes.
//
// Usage:
//
//	streamq -xpath '/a//b' -alphabet a,b,c file.xml
//	streamq -regex 'a.*b' -alphabet a,b,c -stack file.xml
//	streamq -jsonpath '$..title' -alphabet '$,store,book,item,title' -json data.json
//
// With no file argument the document is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"stackless"
)

func main() {
	var (
		regex    = flag.String("regex", "", "path query as a regular expression over labels")
		xpath    = flag.String("xpath", "", "path query in the downward XPath fragment")
		jsonpath = flag.String("jsonpath", "", "path query in the downward JSONPath fragment")
		alpha    = flag.String("alphabet", "", "comma-separated label alphabet Γ (labels in the query are added automatically)")
		jsonIn   = flag.Bool("json", false, "input is JSON (term encoding)")
		termIn   = flag.Bool("term", false, "input is brace notation a{b{}} (term encoding)")
		stack    = flag.Bool("stack", false, "force the stack baseline")
		noStack  = flag.Bool("nostack", false, "fail instead of falling back to the stack")
		classify = flag.Bool("classify", false, "print the classification report and exit")
		quiet    = flag.Bool("quiet", false, "print only the final statistics")
		workers  = flag.Int("workers", 1, "evaluate chunk-parallel with this many workers (buffers the stream; >1 requires a chunkable strategy, otherwise runs sequentially)")
	)
	flag.Parse()

	var labels []string
	if *alpha != "" {
		labels = strings.Split(*alpha, ",")
	}
	q, err := compile(*regex, *xpath, *jsonpath, labels)
	if err != nil {
		fatal(err)
	}

	if *classify {
		fmt.Printf("query: %s over %v\n%s", q, q.Alphabet(), q.Report())
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	opt := stackless.Options{ForceStack: *stack, ForbidStack: *noStack, Workers: *workers}
	report := func(m stackless.Match) {
		if !*quiet {
			fmt.Printf("match pos=%d depth=%d label=%s\n", m.Pos, m.Depth, m.Label)
		}
	}
	var stats stackless.Stats
	switch {
	case *jsonIn:
		stats, err = q.SelectJSON(in, opt, report)
	case *termIn:
		stats, err = q.SelectTerm(in, opt, report)
	default:
		stats, err = q.SelectXML(in, opt, report)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strategy=%s events=%d matches=%d workers=%d\n", stats.Strategy, stats.Events, stats.Matches, stats.Workers)
}

func compile(regex, xpath, jsonpath string, labels []string) (*stackless.Query, error) {
	switch {
	case regex != "":
		return stackless.CompileRegex(regex, labels)
	case xpath != "":
		return stackless.CompileXPath(xpath, labels)
	case jsonpath != "":
		return stackless.CompileJSONPath(jsonpath, labels)
	}
	return nil, fmt.Errorf("streamq: one of -regex, -xpath, -jsonpath is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamq:", err)
	os.Exit(1)
}
