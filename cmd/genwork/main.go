// Command genwork generates synthetic workload documents for the
// benchmarks: product catalogs, deep recursive documents, and the K_n
// schema trees of Figure 1.
//
// Usage:
//
//	genwork -kind catalog -items 100000 > catalog.xml
//	genwork -kind recursive -depth 2000 > deep.xml
//	genwork -kind kn -n 20 -seed 7 > kn.xml
//	genwork -kind deepspike -size 500 -depth 80 > spike.xml
//	genwork -kind closerun -size 64 -depth 32 -term > closeruns.term
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"stackless/internal/encoding"
	"stackless/internal/gen"
	"stackless/internal/tree"
)

func main() {
	var (
		kind    = flag.String("kind", "catalog", "workload kind: catalog | recursive | random | kn | deepspike | closerun")
		items   = flag.Int("items", 10000, "catalog: number of items")
		catdep  = flag.Int("catdepth", 4, "catalog: maximum category nesting")
		depth   = flag.Int("depth", 100, "recursive: nesting depth; deepspike: spike depth; closerun: run length")
		breadth = flag.Int("breadth", 3, "recursive: paragraphs per section")
		size    = flag.Int("size", 1000, "random: number of nodes; deepspike: forest width; closerun: number of runs")
		n       = flag.Int("n", 12, "kn: main-branch length")
		seed    = flag.Int64("seed", 1, "random seed")
		term    = flag.Bool("term", false, "emit brace notation instead of XML")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *kind == "catalog" && !*term {
		if err := gen.WriteCatalogXML(out, rng, *items, *catdep); err != nil {
			fmt.Fprintln(os.Stderr, "genwork:", err)
			os.Exit(1)
		}
		return
	}

	var t = func() *tree.Node {
		switch *kind {
		case "catalog":
			return gen.Catalog(rng, *items, *catdep)
		case "recursive":
			return gen.RecursiveDoc(rng, *depth, *breadth)
		case "random":
			return gen.RandomTree(rng, []string{"a", "b", "c"}, *size)
		case "deepspike":
			return gen.DeepSpike(rng, []string{"a", "b", "c"}, *size, *depth)
		case "closerun":
			return gen.CloseRuns([]string{"a", "b", "c"}, *size, *depth)
		case "kn":
			aCh := make([]bool, *n-1)
			cCh := make([]bool, *n)
			for i := range aCh {
				aCh[i] = rng.Intn(2) == 1
			}
			for i := range cCh {
				cCh[i] = rng.Intn(2) == 1
			}
			return gen.Kn(*n, aCh, cCh)
		default:
			fmt.Fprintf(os.Stderr, "genwork: unknown kind %q\n", *kind)
			os.Exit(1)
			return nil
		}
	}()
	if *term {
		out.WriteString(encoding.TermString(t))
	} else {
		encoding.WriteXML(out, t)
	}
	out.WriteString("\n")
}
