package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden CLI tests: validation verdict lines, the classification report,
// and the exit-code contract (0 all valid, 1 any invalid, 2 usage errors).

func runValidate(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func wantGolden(t *testing.T, got, goldenFile string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", goldenFile))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output mismatch vs testdata/%s:\ngot:\n%s\nwant:\n%s", goldenFile, got, want)
	}
}

func TestValidateGolden(t *testing.T) {
	code, out, stderr := runValidate(t, "", "-dtd", "testdata/catalog.dtd",
		"testdata/valid.xml", "testdata/invalid.xml")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (one document invalid); stderr: %s", code, stderr)
	}
	wantGolden(t, out, "validate.golden")
}

func TestValidateAllValid(t *testing.T) {
	code, out, stderr := runValidate(t, "", "-dtd", "testdata/catalog.dtd", "testdata/valid.xml")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "valid=true (stackless)") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestValidateClassifyGolden(t *testing.T) {
	code, out, stderr := runValidate(t, "", "-dtd", "testdata/catalog.dtd", "-classify")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	wantGolden(t, out, "classify.golden")
}

func TestValidateStdin(t *testing.T) {
	code, out, _ := runValidate(t, "<doc><item></item></doc>", "-dtd", "testdata/catalog.dtd")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.HasPrefix(out, "stdin: valid=true") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestValidateForcedStack(t *testing.T) {
	code, out, _ := runValidate(t, "", "-dtd", "testdata/catalog.dtd", "-stack", "testdata/valid.xml")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "(stack)") {
		t.Errorf("forced stack not reported:\n%s", out)
	}
}

func TestValidateMalformedDocument(t *testing.T) {
	for _, doc := range []string{"<doc><item>", "<doc><<bad"} {
		code, out, _ := runValidate(t, doc, "-dtd", "testdata/catalog.dtd")
		if code != 1 {
			t.Fatalf("doc %q: exit %d, want 1", doc, code)
		}
		if !strings.Contains(out, "stdin: error:") {
			t.Errorf("doc %q: streaming error not reported:\n%s", doc, out)
		}
	}
}

func TestValidateExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"no dtd flag", []string{"testdata/valid.xml"}, 2},
		{"missing dtd file", []string{"-dtd", "no-such.dtd"}, 2},
		{"bad flag", []string{"-no-such-flag"}, 2},
		{"missing document", []string{"-dtd", "testdata/catalog.dtd", "no-such.xml"}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := runValidate(t, "", tc.args...)
			if code != tc.code {
				t.Fatalf("exit %d, want %d", code, tc.code)
			}
		})
	}
}
