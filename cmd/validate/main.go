// Command validate performs weak validation (Section 4.1) of streamed XML
// documents against a path DTD given in the text format of internal/dtd:
//
//	root doc
//	doc  -> (item)*
//	item -> (item | leaf)*
//	leaf -> ()*
//
// It classifies the DTD (registerless / stackless / stack-only per the
// characterization theorems), compiles the cheapest validator, and runs it
// over each document.
//
// Usage:
//
//	validate -dtd grammar.dtd doc1.xml doc2.xml
//	validate -dtd grammar.dtd -classify
//	cat doc.xml | validate -dtd grammar.dtd
//
// The exit status is 0 when every document validates, 1 when any document
// is invalid or fails to stream, and 2 on usage or DTD errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stackless/internal/core"
	"stackless/internal/dtd"
	"stackless/internal/encoding"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dtdPath  = fs.String("dtd", "", "path to the DTD grammar file (required)")
		classify = fs.Bool("classify", false, "print the weak-validation classification and exit")
		stack    = fs.Bool("stack", false, "force the stack baseline validator")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dtdPath == "" {
		fmt.Fprintln(stderr, "validate: -dtd is required")
		return 2
	}
	src, err := os.ReadFile(*dtdPath)
	if err != nil {
		fmt.Fprintln(stderr, "validate:", err)
		return 2
	}
	d, err := dtd.ParsePathDTD(string(src))
	if err != nil {
		fmt.Fprintln(stderr, "validate:", err)
		return 2
	}

	rep, err := d.Analyze()
	if err != nil {
		fmt.Fprintln(stderr, "validate:", err)
		return 2
	}
	if *classify {
		fmt.Fprintf(stdout, "DTD root=%s\n%s", d.Root, d.Format())
		fmt.Fprintf(stdout, "weak validation: registerless=%v stackless=%v (term: %v/%v)\n",
			rep.Registerless(), rep.Stackless(), rep.TermRegisterless(), rep.TermStackless())
		return 0
	}

	var validator core.Evaluator
	kind := "stack"
	if !*stack {
		if ev, k, err := d.Validator(); err == nil {
			validator, kind = ev, k
		}
	}
	if validator == nil {
		validator = d.AsGeneral().NewStackValidator()
	}

	allValid := true
	check := func(name string, r io.Reader) {
		// The balance guard rejects truncated or gross-transport-damaged
		// streams, matching the public API's default.
		ok, err := core.Recognize(validator, encoding.CheckBalance(encoding.NewXMLScanner(r)))
		if err != nil {
			allValid = false
			fmt.Fprintf(stdout, "%s: error: %v\n", name, err)
			return
		}
		if !ok {
			allValid = false
		}
		fmt.Fprintf(stdout, "%s: valid=%v (%s)\n", name, ok, kind)
	}
	if fs.NArg() == 0 {
		check("stdin", stdin)
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "validate:", err)
			return 2
		}
		check(path, f)
		_ = f.Close() // read-side close; check has already consumed the stream
	}
	if !allValid {
		return 1
	}
	return 0
}
