// Command validate performs weak validation (Section 4.1) of streamed XML
// documents against a path DTD given in the text format of internal/dtd:
//
//	root doc
//	doc  -> (item)*
//	item -> (item | leaf)*
//	leaf -> ()*
//
// It classifies the DTD (registerless / stackless / stack-only per the
// characterization theorems), compiles the cheapest validator, and runs it
// over each document.
//
// Usage:
//
//	validate -dtd grammar.dtd doc1.xml doc2.xml
//	validate -dtd grammar.dtd -classify
//	cat doc.xml | validate -dtd grammar.dtd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stackless/internal/core"
	"stackless/internal/dtd"
	"stackless/internal/encoding"
)

func main() {
	var (
		dtdPath  = flag.String("dtd", "", "path to the DTD grammar file (required)")
		classify = flag.Bool("classify", false, "print the weak-validation classification and exit")
		stack    = flag.Bool("stack", false, "force the stack baseline validator")
	)
	flag.Parse()
	if *dtdPath == "" {
		fatal(fmt.Errorf("-dtd is required"))
	}
	src, err := os.ReadFile(*dtdPath)
	if err != nil {
		fatal(err)
	}
	d, err := dtd.ParsePathDTD(string(src))
	if err != nil {
		fatal(err)
	}

	rep, err := d.Analyze()
	if err != nil {
		fatal(err)
	}
	if *classify {
		fmt.Printf("DTD root=%s\n%s", d.Root, d.Format())
		fmt.Printf("weak validation: registerless=%v stackless=%v (term: %v/%v)\n",
			rep.Registerless(), rep.Stackless(), rep.TermRegisterless(), rep.TermStackless())
		return
	}

	var validator core.Evaluator
	kind := "stack"
	if !*stack {
		if ev, k, err := d.Validator(); err == nil {
			validator, kind = ev, k
		}
	}
	if validator == nil {
		validator = d.AsGeneral().NewStackValidator()
	}

	run := func(name string, r io.Reader) {
		ok, err := core.Recognize(validator, encoding.NewXMLScanner(r))
		if err != nil {
			fmt.Printf("%s: error: %v\n", name, err)
			return
		}
		fmt.Printf("%s: valid=%v (%s)\n", name, ok, kind)
	}
	if flag.NArg() == 0 {
		run("stdin", os.Stdin)
		return
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		run(path, f)
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
