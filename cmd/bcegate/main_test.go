package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, err strings.Builder
	code = run(args, &out, &err)
	return code, out.String(), err.String()
}

// TestBadModFails proves the gate can fail: the fixture module's StepBatch
// is written to defeat BCE and must be flagged, while its uint-guarded
// SelectBatch and partial-exempt SimulateSegmentCoded must not be.
func TestBadModFails(t *testing.T) {
	code, out, stderr := runCmd(t, "-dir", "testdata/badmod", "-pkgs", ".", "-v")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "StepBatch retains a bounds check") {
		t.Errorf("StepBatch violation not reported:\n%s", out)
	}
	if !strings.Contains(out, "SelectBatch is bounds-check-free") {
		t.Errorf("clean SelectBatch not confirmed:\n%s", out)
	}
	if strings.Contains(out, "SimulateSegmentCoded retains") {
		t.Errorf("partial kernel was gated:\n%s", out)
	}
	if !strings.Contains(out, "1 violation(s)") {
		t.Errorf("violation count missing:\n%s", out)
	}
}

// TestEngineKernelsClean runs the real gate: every //treelint:plain batch
// kernel in internal/core and internal/encoding must be bounds-check-free.
func TestEngineKernelsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the kernel packages; skipped in -short")
	}
	code, out, stderr := runCmd(t, "-dir", "../..")
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s%s", code, out, stderr)
	}
	if !strings.Contains(out, "plain kernel(s) bounds-check-free") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCmd(t, "-nope"); code != 2 || stderr == "" {
		t.Errorf("bad flag: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, "positional"); code != 2 || !strings.Contains(stderr, "no arguments") {
		t.Errorf("positional arg: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, "-dir", "testdata"); code != 2 || !strings.Contains(stderr, "module root") {
		t.Errorf("non-module dir: exit %d, stderr %q", code, stderr)
	}
}
