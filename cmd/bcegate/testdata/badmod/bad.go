// Package badmod is the bcegate negative fixture: a miniature kernel
// package whose //treelint:plain StepBatch is written to defeat
// bounds-check elimination, so the gate must fail on it. If bcegate ever
// reports this module clean, the gate is broken.
package badmod

// M is a toy machine with the same flat-table shape as the real kernels.
type M struct {
	tab    []int32
	state  int32
	stride int32
}

// StepBatch indexes the table with an unproven bound: the compiler cannot
// eliminate the check, which is exactly what the gate must catch.
//
//treelint:plain
func (m *M) StepBatch(batch []int32) {
	st := m.state
	for _, e := range batch {
		st = m.tab[st*m.stride+e]
	}
	m.state = st
}

// SelectBatch is the well-formed counterpart: the uint guard hoists the
// proof the way the real kernels do, so it must come out clean.
//
//treelint:plain
func (m *M) SelectBatch(batch []int32, hits []int32) []int32 {
	tab := m.tab
	st := m.state
	stride := m.stride
	for i := 0; i < len(batch); i++ {
		idx := uint(st*stride + batch[i])
		if idx < uint(len(tab)) {
			st = tab[idx]
		} else {
			st = -1
		}
		if st < 0 {
			hits = append(hits, int32(i))
		}
	}
	m.state = st
	return hits
}

// SimulateSegmentCoded is deliberately exempt.
//
//treelint:partial fixture kernel exempted to exercise the partial path
func (m *M) SimulateSegmentCoded(batch []int32) int32 {
	for _, e := range batch {
		m.state = m.tab[e]
	}
	return m.state
}
