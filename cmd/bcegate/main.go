// Command bcegate is the bounds-check-elimination gate for the hot batch
// kernels. It rebuilds the engine's kernel packages with the compiler's
// check_bce debug pass enabled and fails if any kernel annotated
// //treelint:plain still contains a bounds check: the flat-table layouts of
// DESIGN.md §11 exist precisely so the inner loops compile to straight-line
// loads, and a silently reintroduced IsInBounds is a performance regression
// no test notices.
//
// The gate is deliberately paranoid about its own plumbing. The Go build
// cache suppresses compiler diagnostics for up-to-date packages, so the
// module is copied to a scratch directory and every kernel file is salted
// to force recompilation; and a probe function written to defeat BCE is
// injected into the build, so a silent change to the diagnostic format (or
// a typo in the flag) turns the gate red instead of green.
//
//	bcegate                  # gate ./internal/core and ./internal/encoding
//	bcegate -v               # list every retained bounds check
//	bcegate -json            # violations in the shared diagjson schema
//	bcegate -dir m -pkgs ./... # gate another module
//
// Exit status: 0 when every //treelint:plain kernel is bounds-check-free,
// 1 when a plain kernel retains a check (or a batch kernel is
// unannotated), 2 on build or plumbing errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"stackless/internal/diagjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// kernelNames are the batch-kernel methods the gate derives its target set
// from; every implementation must be annotated plain or partial.
var kernelNames = map[string]bool{
	"StepBatch":            true,
	"SelectBatch":          true,
	"SimulateSegmentCoded": true,
}

// foundRe matches the check_bce diagnostics the compiler emits.
var foundRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: Found (IsInBounds|IsSliceInBounds)$`)

const probeFile = "zz_bcegate_probe.go"

// kernel is one annotated (or missing-annotation) batch kernel: the file it
// lives in (module-relative, slash-separated) and its body's line range.
type kernel struct {
	file       string
	name       string
	start, end int
	mode       string // "plain", "partial", or "" when unannotated
}

// found is one retained bounds check.
type found struct {
	file string
	line int
	op   string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bcegate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to gate")
	pkgsFlag := fs.String("pkgs", "./internal/core,./internal/encoding,./internal/stackeval", "comma-separated package dirs holding the kernels")
	verbose := fs.Bool("v", false, "list every retained bounds check, not only kernel violations")
	jsonOut := fs.Bool("json", false, "emit violations in the shared diagjson schema")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "bcegate: no arguments expected")
		return 2
	}
	pkgs := strings.Split(*pkgsFlag, ",")

	fail := func(err error) int {
		fmt.Fprintln(stderr, "bcegate:", err)
		return 2
	}

	root, err := filepath.Abs(*dir)
	if err != nil {
		return fail(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return fail(fmt.Errorf("%s is not a module root: %w", *dir, err))
	}

	// Copy the module to scratch so salting never touches the real tree.
	tmp, err := os.MkdirTemp("", "bcegate")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(tmp)
	if err := copyModule(root, tmp); err != nil {
		return fail(err)
	}

	// Salt every non-test .go file of the target packages so the build
	// cache cannot swallow the diagnostics, and inject the self-test probe
	// into the first package.
	salt := fmt.Sprintf("// bcegate salt %d %d\n", os.Getpid(), time.Now().UnixNano())
	for i, p := range pkgs {
		pdir := filepath.Join(tmp, filepath.FromSlash(strings.TrimPrefix(p, "./")))
		if err := saltPackage(pdir, salt); err != nil {
			return fail(err)
		}
		if i == 0 {
			if err := writeProbe(pdir); err != nil {
				return fail(err)
			}
		}
	}

	// Rebuild with the check_bce pass on and harvest its diagnostics.
	cmd := exec.Command("go", append([]string{"build", "-gcflags=./...=-d=ssa/check_bce"}, pkgs...)...)
	cmd.Dir = tmp
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fail(fmt.Errorf("go build: %v\n%s", err, out.String()))
	}
	var founds []found
	for _, line := range strings.Split(out.String(), "\n") {
		m := foundRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		founds = append(founds, found{file: filepath.ToSlash(m[1]), line: n, op: m[3]})
	}

	// Self-test: the probe is written to defeat BCE, so its check must be
	// in the harvest — otherwise the flag pipeline itself is broken and a
	// green result would mean nothing.
	probeSeen := false
	for _, f := range founds {
		if path.Base(f.file) == probeFile {
			probeSeen = true
		}
	}
	if !probeSeen {
		return fail(fmt.Errorf("self-test failed: the probe's bounds check did not surface; check_bce diagnostics are not reaching the gate (%d lines harvested)", len(founds)))
	}

	// Locate every batch kernel and its annotation in the scratch copy
	// (line numbers match the original: the salt is appended at EOF).
	var kernels []kernel
	for _, p := range pkgs {
		ks, err := scanKernels(tmp, strings.TrimPrefix(p, "./"))
		if err != nil {
			return fail(err)
		}
		kernels = append(kernels, ks...)
	}
	sort.Slice(kernels, func(i, j int) bool {
		if kernels[i].file != kernels[j].file {
			return kernels[i].file < kernels[j].file
		}
		return kernels[i].start < kernels[j].start
	})

	inKernel := func(f found) bool {
		for _, k := range kernels {
			if strings.HasSuffix(f.file, k.file) && k.start <= f.line && f.line <= k.end {
				return true
			}
		}
		return false
	}
	var records []diagjson.Record
	violate := func(file string, line int, kind, msg string) {
		records = append(records, diagjson.Record{
			File: file, Line: line, Analyzer: "bcegate", Kind: kind, Message: msg,
		})
		if !*jsonOut {
			fmt.Fprintf(stdout, "%s:%d: %s\n", file, line, msg)
		}
	}
	plain, partial := 0, 0
	for _, k := range kernels {
		switch k.mode {
		case "partial":
			partial++
			continue
		case "":
			violate(k.file, k.start, "unannotated",
				fmt.Sprintf("batch kernel %s carries neither //treelint:plain nor //treelint:partial", k.name))
			continue
		}
		plain++
		clean := true
		for _, f := range founds {
			if strings.HasSuffix(f.file, k.file) && k.start <= f.line && f.line <= k.end {
				clean = false
				violate(k.file, f.line, "bounds-check",
					fmt.Sprintf("plain kernel %s retains a bounds check (%s)", k.name, f.op))
			}
		}
		if clean && *verbose && !*jsonOut {
			fmt.Fprintf(stdout, "%s:%d: plain kernel %s is bounds-check-free\n", k.file, k.start, k.name)
		}
	}
	if *verbose && !*jsonOut {
		for _, f := range founds {
			if path.Base(f.file) != probeFile && !inKernel(f) {
				fmt.Fprintf(stdout, "note: %s:%d: %s (outside the gated kernels)\n", f.file, f.line, f.op)
			}
		}
	}
	if len(kernels) == 0 {
		return fail(fmt.Errorf("no batch kernels (%s) found under %s", keys(kernelNames), *pkgsFlag))
	}
	if *jsonOut {
		if err := diagjson.Write(stdout, records); err != nil {
			return fail(err)
		}
	}
	if len(records) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "bcegate: %d violation(s)\n", len(records))
		}
		return 1
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "bcegate: %d plain kernel(s) bounds-check-free, %d partial kernel(s) exempt\n", plain, partial)
	}
	return 0
}

func keys(m map[string]bool) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "/")
}

// copyModule copies the module tree at src into dst, skipping VCS state.
func copyModule(src, dst string) error {
	return filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
}

// saltPackage appends a cache-busting comment to every non-test .go file in
// dir (non-recursive: one package).
func saltPackage(dir, salt string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		if _, err := f.WriteString("\n" + salt); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeProbe drops a function the compiler provably cannot eliminate the
// bounds check from into the package at dir.
func writeProbe(dir string) error {
	pkg, err := packageName(dir)
	if err != nil {
		return err
	}
	src := fmt.Sprintf(`package %s

// bcegateProbe indexes with an arbitrary int: the check cannot be
// eliminated, so its Found line proves the diagnostics pipeline works.
func bcegateProbe(a []int32, i int) int32 { return a[i] }
`, pkg)
	return os.WriteFile(filepath.Join(dir, probeFile), []byte(src), 0o644)
}

// packageName parses the package clause of the first buildable .go file in
// dir.
func packageName(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	fset := token.NewFileSet()
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly)
		if err != nil {
			continue
		}
		return f.Name.Name, nil
	}
	return "", fmt.Errorf("no .go files in %s", dir)
}

// scanKernels parses the package at root/rel and returns every batch-kernel
// declaration with its annotation and body line range.
func scanKernels(root, rel string) ([]kernel, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []kernel
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == probeFile {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !kernelNames[fn.Name.Name] {
				continue
			}
			k := kernel{
				file:  path.Join(filepath.ToSlash(rel), name),
				name:  fn.Name.Name,
				start: fset.Position(fn.Body.Pos()).Line,
				end:   fset.Position(fn.Body.End()).Line,
				mode:  annotation(fn),
			}
			out = append(out, k)
		}
	}
	return out, nil
}

// annotation extracts the treelint kernel directive from a function's doc
// comment: "plain", "partial", or "" when absent.
func annotation(fn *ast.FuncDecl) string {
	if fn.Doc == nil {
		return ""
	}
	for _, c := range fn.Doc.List {
		for _, mode := range []string{"plain", "partial"} {
			if rest, ok := strings.CutPrefix(c.Text, "//treelint:"+mode); ok &&
				(rest == "" || rest[0] == ' ' || rest[0] == '\t') {
				return mode
			}
		}
	}
	return ""
}
