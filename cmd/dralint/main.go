// Command dralint is a "go vet" for depth-register automata: it checks
// DRA transition tables against the side conditions of Definition 2.1 and
// Section 2.2 of the paper and reports structured findings.
//
// With no arguments it lints every automaton the repository constructs
// from the paper (Examples 2.2, 2.5–2.7, the Proposition 2.8 chain
// machines and the Proposition 2.3 FormalDRA translations) — a smoke test
// of both the constructions and the linter. With file arguments it parses
// each as a .dra machine (see internal/dralint.Parse for the format) and
// lints it, honouring the file's 'restricted' directive.
//
//	dralint                    # lint the builtin paper machines
//	dralint machine.dra        # lint a machine from a file
//	dralint -restricted m.dra  # hold it to §2.2 even without the directive
//	dralint -all m.dra         # show Info-level findings too
//	dralint -json              # findings in the shared diagjson schema
//	                           # (file carries the machine name or path,
//	                           # line is 0: machines are not line-addressed)
//
// The exit status is 0 when every machine is clean (no findings at
// Warning severity or above), 1 otherwise, and 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"stackless/internal/alphabet"
	"stackless/internal/classify"
	"stackless/internal/core"
	"stackless/internal/diagjson"
	"stackless/internal/dralint"
	"stackless/internal/paperfigs"
	"stackless/internal/rex"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	restricted := fs.Bool("restricted", false, "require the §2.2 restriction for all machines")
	all := fs.Bool("all", false, "show Info-level findings, not only Warning and above")
	maxPerKind := fs.Int("max", 0, "cap findings reported per kind (0 = default)")
	jsonOut := fs.Bool("json", false, "emit findings in the shared diagjson schema")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	failed := false
	var records []diagjson.Record
	report := func(name string, d *core.DRA, cfg dralint.Config) {
		cfg.MaxPerKind = *maxPerKind
		diags := dralint.LintWith(d, cfg)
		if !dralint.Clean(diags) {
			failed = true
		}
		shown := diags
		if !*all {
			shown = dralint.Filter(diags, dralint.Warning)
		}
		if *jsonOut {
			// Machines are logical units, not files with line numbers:
			// the machine name (or .dra path) stands in for the file.
			for _, di := range shown {
				records = append(records, diagjson.Record{
					File:     name,
					Analyzer: "dralint",
					Kind:     fmt.Sprint(di.Kind),
					Message:  fmt.Sprintf("%s: %s", di.Severity, di.Message),
				})
			}
			return
		}
		if len(shown) == 0 {
			fmt.Fprintf(stdout, "%s: clean\n", name)
			return
		}
		fmt.Fprintf(stdout, "%s:\n", name)
		for _, di := range shown {
			fmt.Fprintf(stdout, "  %s\n", di)
		}
	}

	if fs.NArg() == 0 {
		lintBuiltins(report, *restricted)
	} else {
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(stderr, "dralint:", err)
				return 2
			}
			d, expect, err := dralint.Parse(f)
			_ = f.Close() // read-side close; a late error cannot invalidate the parse
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			report(path, d, dralint.Config{RequireRestricted: *restricted || expect.Restricted})
		}
	}
	if *jsonOut {
		if err := diagjson.Write(stdout, records); err != nil {
			fmt.Fprintln(stderr, "dralint:", err)
			return 2
		}
	}
	if failed {
		return 1
	}
	return 0
}

// lintBuiltins runs the linter over the repository's paper machines. The
// restricted ones are always held to §2.2; Example 2.2 only when the flag
// forces it (the paper constructs it unrestricted on purpose).
func lintBuiltins(report func(string, *core.DRA, dralint.Config), restricted bool) {
	strict := dralint.Config{RequireRestricted: true}
	report("Example 2.2 (binary counter)", core.Example22(), dralint.Config{RequireRestricted: restricted})
	for _, expr := range []string{"ab*", "(ab)*", ".*a"} {
		l := rex.MustCompile(expr, alphabet.Letters("ab"))
		report("Example 2.5 (leftmost branch ∈ "+expr+")", core.Example25(l), strict)
	}
	report("Example 2.6 (a with b-descendant)", core.Example26(), strict)
	report("Example 2.7 (minimal a with b-child)", core.Example27Minimal(), strict)
	for _, chain := range [][]string{{"a", "b"}, {"a", "b", "c"}} {
		d, err := core.ChainPatternDRA(alphabet.Letters("abc"), chain)
		if err != nil {
			panic(err) // fixed inputs; cannot happen
		}
		report(fmt.Sprintf("Prop 2.8 (chain pattern %v)", chain), d, strict)
	}
	for _, expr := range []string{paperfigs.Fig3aRegex, paperfigs.Fig3bRegex, paperfigs.Fig3cRegex} {
		an := classify.Analyze(rex.MustCompile(expr, paperfigs.GammaABC()))
		d, err := core.FormalDRA(an, 0)
		if err != nil {
			panic(err)
		}
		report("Prop 2.3 FormalDRA ("+expr+")", d, strict)
	}
}
