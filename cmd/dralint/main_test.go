package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, err strings.Builder
	code = run(args, &out, &err)
	return code, out.String(), err.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuiltinsClean(t *testing.T) {
	code, out, _ := runCmd(t)
	if code != 0 {
		t.Fatalf("exit %d on builtins:\n%s", code, out)
	}
	if !strings.Contains(out, "Example 2.6") || !strings.Contains(out, "clean") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestLintFileFindings(t *testing.T) {
	// One register, never loaded nor tested, and an unreachable accepting
	// state: two warnings, exit 1.
	path := writeFile(t, "dirty.dra", `
alphabet a
states 2
regs 1
accept 1
forall 0 a - 0
forall 0 /a - 0
forall 1 a - 1
forall 1 /a - 1
`)
	code, out, _ := runCmd(t, path)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	for _, want := range []string{"register-unused", "unreachable-accept"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %s:\n%s", want, out)
		}
	}
}

func TestLintFileClean(t *testing.T) {
	path := writeFile(t, "clean.dra", `
alphabet a
states 1
accept 0
restricted
forall 0 a - 0
forall 0 /a - 0
`)
	code, out, _ := runCmd(t, path)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("output lacks clean verdict:\n%s", out)
	}
}

func TestRestrictedFlag(t *testing.T) {
	// Keeps a stale register without reloading: fine by default, an error
	// under -restricted.
	// The register is loaded (state 0) and branched on (state 1 closes),
	// but the X≥-only close keeps the stale value.
	path := writeFile(t, "unres.dra", `
alphabet a
states 2
regs 1
accept 1
forall 0 a 0 1
forall 0 /a 0 0
forall 1 a - 1
trans 1 /a 0 0 - 0
trans 1 /a 0 - - 1
trans 1 /a - 0 - 0
`)
	if code, out, _ := runCmd(t, path); code != 0 {
		t.Fatalf("exit %d without -restricted:\n%s", code, out)
	}
	code, out, _ := runCmd(t, "-restricted", path)
	if code != 1 || !strings.Contains(out, "unrestricted") {
		t.Fatalf("exit %d with -restricted, want 1 with unrestricted finding:\n%s", code, out)
	}
}

// TestGoldenOutput pins the exact report for a small dirty machine.
func TestGoldenOutput(t *testing.T) {
	path := writeFile(t, "golden.dra", `
alphabet a
states 2
accept 1
forall 0 a - 0
forall 0 /a - 0
forall 1 a - 1
forall 1 /a - 1
`)
	code, out, _ := runCmd(t, path)
	want := path + `:
  warning[unreachable-accept] accepting state 1 is unreachable from start state 0: it can never witness acceptance (Def. 2.1)
  warning[vacuous-acceptance] no accepting state is reachable: the automaton rejects every tree (Def. 2.1)
`
	if code != 1 || out != want {
		t.Errorf("exit %d, output:\n%s\nwant:\n%s", code, out, want)
	}
}

// TestJSONSchema locks -json to the shared diagjson shape: exactly the
// five agreed keys per record, with the .dra path standing in for the
// file and line 0 (machines are not line-addressed).
func TestJSONSchema(t *testing.T) {
	path := writeFile(t, "dirty.dra", `
alphabet a
states 2
regs 1
accept 1
forall 0 a - 0
forall 0 /a - 0
forall 1 a - 1
forall 1 /a - 1
`)
	code, out, _ := runCmd(t, "-json", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(records) == 0 {
		t.Fatal("-json produced no records for the dirty machine")
	}
	kinds := map[string]bool{}
	for _, r := range records {
		for _, key := range []string{"file", "line", "analyzer", "kind", "message"} {
			if _, ok := r[key]; !ok {
				t.Errorf("record missing %q: %v", key, r)
			}
		}
		if len(r) != 5 {
			t.Errorf("record has %d keys, want exactly 5: %v", len(r), r)
		}
		if r["analyzer"] != "dralint" || r["file"] != path || r["line"] != float64(0) {
			t.Errorf("unexpected analyzer/file/line: %v", r)
		}
		kinds[r["kind"].(string)] = true
	}
	for _, want := range []string{"register-unused", "unreachable-accept"} {
		if !kinds[want] {
			t.Errorf("kind %s missing from records: %v", want, kinds)
		}
	}
}

// TestJSONBuiltinsClean: the clean corpus must emit an empty array, not
// null, and still exit 0.
func TestJSONBuiltinsClean(t *testing.T) {
	code, out, _ := runCmd(t, "-json")
	if code != 0 {
		t.Fatalf("exit %d on builtins:\n%s", code, out)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if records == nil || len(records) != 0 {
		t.Errorf("clean corpus emitted %v", records)
	}
}

func TestUsageAndIOErrors(t *testing.T) {
	if code, _, stderr := runCmd(t, "-nope"); code != 2 || stderr == "" {
		t.Errorf("bad flag: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, filepath.Join(t.TempDir(), "missing.dra")); code != 2 || stderr == "" {
		t.Errorf("missing file: exit %d, stderr %q", code, stderr)
	}
	path := writeFile(t, "bad.dra", "alphabet a\nstates 1\nfrobnicate\n")
	if code, _, stderr := runCmd(t, path); code != 2 || !strings.Contains(stderr, "frobnicate") {
		t.Errorf("parse error: exit %d, stderr %q", code, stderr)
	}
}
