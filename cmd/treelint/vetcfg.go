package main

// The `go vet -vettool` protocol, mirroring the behaviour of
// golang.org/x/tools/go/analysis/unitchecker (reimplemented here on the
// standard library; see the internal/analysis package comment).
//
// cmd/go probes the tool with -V=full (for the build cache key) and
// -flags (for the passthrough flag schema), then invokes it once per
// package with a single *.cfg argument describing the compilation unit:
// source files, the import map, and the export data file of every
// dependency, all prepared by cmd/go itself.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"

	"stackless/internal/analysis"
)

// vetConfig describes a vet invocation for a single compilation unit, as
// written by cmd/go to a *.cfg file.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a cfg file.
func runVetUnit(cfgPath string, suite []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "treelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The suite is fact-free, so the serialized fact set is always empty —
	// but cmd/go expects the file to exist, both for leaf invocations and
	// for the VetxOnly dependency pre-passes.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "treelint:", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		if !writeVetx() {
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "treelint:", err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	pkg, info, err := typecheck(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go is running vet as part of `go test`: the compiler will
			// report the error itself, better than we can.
			if !writeVetx() {
				return 2
			}
			return 0
		}
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}

	findings, err := runSuite(suite, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}
	sortFindings(findings)
	if !writeVetx() {
		return 2
	}

	if jsonOut {
		// go vet's JSON framing: {pkgid: {analyzer: [{posn, message}]}}.
		type jsonDiagnostic struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiagnostic{}
		for _, f := range findings {
			byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiagnostic{
				Posn:    fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col),
				Message: f.Message,
			})
		}
		out := map[string]map[string][]jsonDiagnostic{cfg.ID: byAnalyzer}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "treelint:", err)
			return 2
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
	}
	if len(findings) > 0 {
		return 2 // the exit code cmd/go interprets as "diagnostics reported"
	}
	return 0
}

// printVersion implements -V=full: cmd/go hashes this line into the build
// cache key, so it must change whenever the tool binary changes. The
// format (including the literal "comments-go-here") is the one cmd/go's
// version scanner accepts, inherited from unitchecker.
func printVersion(stdout io.Writer, mode string, stderr io.Writer) int {
	if mode != "full" {
		fmt.Fprintf(stderr, "treelint: unsupported flag value -V=%s\n", mode)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}
	defer func() { _ = f.Close() }()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}
