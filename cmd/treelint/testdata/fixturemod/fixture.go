// Package fixture is a tiny standalone module with two known treelint
// findings, pinned by the cmd/treelint driver tests (exit codes, plain and
// JSON output, and the `go vet -vettool` protocol).
package fixture

import "os"

// Mode is a two-member enum, so the switch below is detectably partial.
type Mode int

// The modes.
const (
	Fast Mode = iota
	Slow
)

// Describe is missing the Slow case.
func Describe(m Mode) string {
	switch m {
	case Fast:
		return "fast"
	}
	return "?"
}

// Drop loses the Close error.
func Drop(f *os.File) {
	f.Close()
}
