package main

// Driver-level tests: exit codes, plain and JSON output, the -V/-flags
// handshake, and an end-to-end `go vet -vettool` run — all against the
// fixture module in testdata/fixturemod, whose findings are pinned by
// golden.txt.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binPath is the treelint binary built once for the whole test run.
var binPath string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "treelint-test")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(tmp, "treelint")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		panic("building treelint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	_ = os.RemoveAll(tmp)
	os.Exit(code)
}

// runBin executes the built binary and returns stdout, stderr and the exit
// code.
func runBin(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running treelint %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestCleanPackageExitsZero(t *testing.T) {
	stdout, stderr, code := runBin(t, ".", "stackless/internal/rex")
	if code != 0 || stdout != "" {
		t.Fatalf("clean package: exit %d, stdout %q, stderr %q", code, stdout, stderr)
	}
}

func TestFindingsExitOneAndMatchGolden(t *testing.T) {
	stdout, _, code := runBin(t, filepath.Join("testdata", "fixturemod"), "./...")
	if code != 1 {
		t.Fatalf("fixture module: exit %d, want 1\n%s", code, stdout)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "fixturemod", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(golden) {
		t.Errorf("output diverged from golden.txt:\ngot:\n%swant:\n%s", stdout, golden)
	}
}

// TestJSONOutput locks standalone -json to the shared diagjson schema:
// exactly the five agreed keys per record, analyzer "treelint", and the
// suite analyzer carried in kind.
func TestJSONOutput(t *testing.T) {
	stdout, _, code := runBin(t, filepath.Join("testdata", "fixturemod"), "-json", "./...")
	if code != 1 {
		t.Fatalf("fixture module -json: exit %d, want 1", code)
	}
	var got []map[string]any
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout)
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(got), got)
	}
	for _, r := range got {
		for _, key := range []string{"file", "line", "analyzer", "kind", "message"} {
			if _, ok := r[key]; !ok {
				t.Errorf("record missing %q: %v", key, r)
			}
		}
		if len(r) != 5 {
			t.Errorf("record has %d keys, want exactly 5: %v", len(r), r)
		}
		if r["analyzer"] != "treelint" {
			t.Errorf("analyzer = %v, want treelint: %v", r["analyzer"], r)
		}
	}
	if got[0]["kind"] != "enumswitch" || got[0]["file"] != "fixture.go" || got[0]["line"] != float64(19) {
		t.Errorf("first finding: %+v", got[0])
	}
	if got[1]["kind"] != "closecheck" || got[1]["line"] != float64(28) {
		t.Errorf("second finding: %+v", got[1])
	}
}

func TestAnalyzerSelectionFlag(t *testing.T) {
	// With only closecheck enabled the enumswitch finding must vanish.
	stdout, _, code := runBin(t, filepath.Join("testdata", "fixturemod"), "-closecheck", "./...")
	if code != 1 {
		t.Fatalf("-closecheck: exit %d, want 1", code)
	}
	if strings.Contains(stdout, "enumswitch") || !strings.Contains(stdout, "Close error is dropped") {
		t.Errorf("-closecheck output:\n%s", stdout)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	if _, _, code := runBin(t, ".", "-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if _, stderr, code := runBin(t, ".", "./does-not-exist"); code != 2 || stderr == "" {
		t.Errorf("bad pattern: exit %d (stderr %q), want 2 with a message", code, stderr)
	}
}

func TestVersionHandshake(t *testing.T) {
	// cmd/go parses this line to compute the build cache key; replicate its
	// checks (cmd/go/internal/work/buildid.go toolID).
	stdout, _, code := runBin(t, ".", "-V=full")
	if code != 0 {
		t.Fatalf("-V=full: exit %d", code)
	}
	f := strings.Fields(stdout)
	if len(f) < 3 || f[1] != "version" {
		t.Fatalf("-V=full output %q: want %q as second field", stdout, "version")
	}
	if f[2] == "devel" && !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output %q: devel line must end in buildID=...", stdout)
	}
	if _, _, code := runBin(t, ".", "-V=short"); code != 2 {
		t.Errorf("-V=short: exit %d, want 2", code)
	}
}

func TestFlagSchema(t *testing.T) {
	stdout, _, code := runBin(t, ".", "-flags")
	if code != 0 {
		t.Fatalf("-flags: exit %d", code)
	}
	var schema []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal([]byte(stdout), &schema); err != nil {
		t.Fatalf("decoding -flags output: %v\n%s", err, stdout)
	}
	want := map[string]bool{"json": false, "plainkernel": false, "enumswitch": false,
		"poolcheck": false, "atomicfield": false, "closecheck": false}
	for _, fl := range schema {
		if _, ok := want[fl.Name]; ok {
			want[fl.Name] = true
		}
		if !fl.Bool {
			t.Errorf("flag %s must be boolean for go vet passthrough", fl.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("flag %s missing from -flags schema", name)
		}
	}
}

func TestGoVetVettoolProtocol(t *testing.T) {
	// End to end through cmd/go: the handshake, per-package cfg invocation
	// and exit status all have to line up.
	vet := func(dir string, patterns ...string) (string, int) {
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + binPath}, patterns...)...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("go vet: %v\n%s", err, out)
			}
			code = ee.ExitCode()
		}
		return string(out), code
	}
	if out, code := vet(".", "stackless/internal/rex"); code != 0 {
		t.Fatalf("go vet -vettool on clean package: exit %d\n%s", code, out)
	}
	out, code := vet(filepath.Join("testdata", "fixturemod"), "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool on fixture module: exit 0, want failure\n%s", out)
	}
	for _, msg := range []string{"switch over Mode is missing cases Slow", "Close error is dropped"} {
		if !strings.Contains(out, msg) {
			t.Errorf("go vet output missing %q:\n%s", msg, out)
		}
	}
}
