package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"stackless/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the standalone
// loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// unit is one package to analyze: its sources plus the export data of
// every dependency, which the gc importer reads instead of re-typechecking
// the world.
type unit struct {
	importPath string
	dir        string
	files      []string
	exports    map[string]string // dependency import path -> export file
}

// loadPackages resolves patterns with the go tool. `go list -export -deps`
// compiles (or fetches from the build cache) export data for every
// dependency, so each matched package can be type-checked from its own
// sources alone.
func loadPackages(patterns []string) ([]*unit, error) {
	args := append([]string{"list", "-export", "-deps", "-json=Dir,ImportPath,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, strings.TrimSpace(errBuf.String()))
	}
	exports := map[string]string{}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, errors.New(p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	var units []*unit
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, name := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, name))
		}
		units = append(units, &unit{
			importPath: p.ImportPath,
			dir:        p.Dir,
			files:      files,
			exports:    exports,
		})
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return units, nil
}

// analyze parses and type-checks the unit, then runs the suite over it.
func (u *unit) analyze(suite []*analysis.Analyzer) ([]finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range u.files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := u.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	pkg, info, err := typecheck(fset, u.importPath, files, lookup)
	if err != nil {
		return nil, err
	}
	return runSuite(suite, fset, files, pkg, info)
}

// typecheck runs the type checker over parsed files, resolving imports
// through compiler export data served by lookup.
func typecheck(fset *token.FileSet, path string, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// runSuite applies every analyzer to one type-checked package and resolves
// diagnostic positions. File paths are reported relative to the current
// directory when that makes them shorter.
func runSuite(suite []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]finding, error) {
	cwd, _ := os.Getwd()
	var findings []finding
	for _, a := range suite {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			posn := fset.Position(d.Pos)
			file := posn.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			findings = append(findings, finding{
				File:     file,
				Line:     posn.Line,
				Col:      posn.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		if err := pass.Analyzer.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return findings, nil
}
