// Command treelint runs the internal/analysis suite — the Go-level
// counterpart of cmd/dralint (which checks automata tables, not Go
// source). It machine-checks the engine's hot-path, exhaustiveness and
// concurrency contracts: plain kernels stay uninstrumented, enum switches
// stay total, pool workers stay disciplined, atomic fields stay atomic,
// Close errors stay handled — plus the flow-sensitive analyzers: allocfree
// (no heap-allocating forms on any live path of a plain kernel), lifecycle
// (SaveConfig/RestoreConfig pairing and reset-on-reuse across restarted
// streams) and hotlock (no sync or channel operations reachable from the
// batch kernels). See DESIGN.md §10 and §15.
//
// Two modes share one binary:
//
//	treelint [-json] [packages]    # standalone: loads packages via the
//	                               # go tool and analyzes them; defaults
//	                               # to ./...
//	go vet -vettool=$(pwd)/treelint ./...   # vet protocol: cmd/go drives
//	                               # the loading and invokes treelint
//	                               # once per package with a .cfg file
//
// Per-analyzer boolean flags (-plainkernel, -enumswitch, -poolcheck,
// -atomicfield, -closecheck, -allocfree, -lifecycle, -hotlock) select a
// subset; with none set, the whole suite runs.
//
// Standalone exit status: 0 when every package is clean, 1 when there are
// findings, 2 on usage or load errors. Standalone -json emits the shared
// diagnostic schema (internal/diagjson): records of {file, line, analyzer,
// kind, message} where analyzer is "treelint" and kind names the suite
// analyzer that fired. Under the vet protocol the tool follows go vet's
// convention instead (non-zero on findings, diagnostics on stderr; -json
// output on stdout with exit 0 in cmd/go's own framing, which is fixed by
// the vet protocol and deliberately not the shared schema).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"stackless/internal/analysis"
	"stackless/internal/diagjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic with a resolved position. The -json output
// maps these onto the shared diagjson schema (the column is dropped
// there; the plain-text output keeps it).
type finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	flagsMode := fs.Bool("flags", false, "print the flag schema as JSON (go vet protocol)")
	versionFlag := fs.String("V", "", "print version and exit (go vet protocol, use -V=full)")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only "+a.Name+" (and other explicitly selected analyzers): "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		return printVersion(stdout, *versionFlag, stderr)
	}
	if *flagsMode {
		printFlagSchema(stdout)
		return 0
	}

	suite := analysis.All()
	var selected []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = suite
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], selected, *jsonOut, stdout, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(rest, selected, *jsonOut, stdout, stderr)
}

func runStandalone(patterns []string, suite []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	units, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "treelint:", err)
		return 2
	}
	var findings []finding
	for _, u := range units {
		fs, err := u.analyze(suite)
		if err != nil {
			fmt.Fprintf(stderr, "treelint: %s: %v\n", u.importPath, err)
			return 2
		}
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	if jsonOut {
		records := make([]diagjson.Record, 0, len(findings))
		for _, f := range findings {
			records = append(records, diagjson.Record{
				File:     f.File,
				Line:     f.Line,
				Analyzer: "treelint",
				Kind:     f.Analyzer,
				Message:  f.Message,
			})
		}
		if err := diagjson.Write(stdout, records); err != nil {
			fmt.Fprintln(stderr, "treelint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(stdout, "treelint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

func sortFindings(findings []finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// printFlagSchema emits the flag description cmd/go reads from
// `vettool -flags` to learn which options it may pass through.
func printFlagSchema(stdout io.Writer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit findings as JSON"}}
	for _, a := range analysis.All() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.Marshal(flags)
	fmt.Fprintln(stdout, string(data))
}
