// Command benchjson converts `go test -bench` text output into a JSON
// snapshot, so benchmark sweeps can be committed and diffed (see
// BENCH_parallel.json and `make bench`).
//
// Usage:
//
//	go test -bench 'SelectParallel' -benchtime 100x . | benchjson > BENCH_parallel.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: the run count plus every reported metric
// (ns/op, ns/event, MB/s, B/op, allocs/op, ...) keyed by unit.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the whole run: the goos/goarch/cpu/pkg context lines plus
// all benchmark results in input order.
type Snapshot struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	snap := Snapshot{Context: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "cpu", "pkg":
				snap.Context[k] = strings.TrimSpace(v)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, runs, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			fmt.Fprintf(os.Stderr, "benchjson: skipping malformed line: %s\n", line)
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping malformed line: %s\n", line)
			continue
		}
		r := Result{Name: trimProcSuffix(fields[0]), Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		snap.Results = append(snap.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// trimProcSuffix drops the trailing -GOMAXPROCS that the bench runner
// appends when GOMAXPROCS > 1, so snapshots from different machines keep
// comparable names.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
