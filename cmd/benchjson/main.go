// Command benchjson converts `go test -bench` text output into a JSON
// snapshot, so benchmark sweeps can be committed and diffed (see
// BENCH_parallel.json and `make bench`).
//
// Usage:
//
//	go test -bench 'SelectParallel' -benchtime 100x . | benchjson > BENCH_parallel.json
//	go test -bench 'SelectParallel' -benchtime 100x . | benchjson -compare BENCH_parallel.json -tolerance 0.25
//
// In -compare mode the fresh run (standard input) is diffed against the
// committed snapshot: for every benchmark present in both, the primary
// metric (ns/event when present, ns/op otherwise) may regress by at most the
// given tolerance (fraction; 0.25 = +25%). The exit status is 1 when any
// benchmark regresses beyond tolerance, 0 otherwise — improvements and
// benchmarks present on only one side are reported but never fail the run.
//
// Repeated benchmark names (`go test -count N`) are merged into one result
// taking the median value per metric, so tight-tolerance gates can run
// median-of-N on noisy machines: a single lucky or unlucky run moves
// neither side of the comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: the run count plus every reported metric
// (ns/op, ns/event, MB/s, B/op, allocs/op, ...) keyed by unit.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the whole run: the goos/goarch/cpu/pkg context lines plus
// all benchmark results in input order.
type Snapshot struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	compareFile := fs.String("compare", "", "diff the fresh run against this committed snapshot instead of printing JSON")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional regression of the primary metric in -compare mode")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	snap, err := parseBench(stdin, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if *compareFile == "" {
		out := json.NewEncoder(stdout)
		out.SetIndent("", "  ")
		if err := out.Encode(snap); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		return 0
	}
	baseBytes, err := os.ReadFile(*compareFile)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	var base Snapshot
	if err := json.Unmarshal(baseBytes, &base); err != nil {
		fmt.Fprintf(stderr, "benchjson: %s: %v\n", *compareFile, err)
		return 2
	}
	regressions := compare(base, snap, *tolerance, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "FAIL: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *tolerance*100)
		return 1
	}
	fmt.Fprintf(stdout, "ok: no regression beyond %.0f%%\n", *tolerance*100)
	return 0
}

// parseBench reads `go test -bench` text output into a snapshot. Malformed
// benchmark lines are reported to stderr and skipped.
func parseBench(r io.Reader, stderr io.Writer) (Snapshot, error) {
	snap := Snapshot{Context: map[string]string{}, Results: []Result{}}
	raw := map[string]map[string][]float64{}
	idx := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "cpu", "pkg":
				snap.Context[k] = strings.TrimSpace(v)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, runs, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			fmt.Fprintf(stderr, "benchjson: skipping malformed line: %s\n", line)
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: skipping malformed line: %s\n", line)
			continue
		}
		r := Result{Name: trimProcSuffix(fields[0]), Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		// Fold repeated names (`go test -count N`) into one entry per
		// benchmark, collecting every sample per metric for the median
		// reduction below.
		samples, ok := raw[r.Name]
		if !ok {
			samples = map[string][]float64{}
			raw[r.Name] = samples
			idx[r.Name] = len(snap.Results)
			snap.Results = append(snap.Results, r)
		} else {
			snap.Results[idx[r.Name]].Runs += r.Runs
		}
		for unit, v := range r.Metrics {
			samples[unit] = append(samples[unit], v)
		}
	}
	// The median is symmetric under scheduler jitter — one lucky or unlucky
	// run moves neither side of a -compare gate — which is what lets tight
	// tolerances hold on shared machines.
	for i := range snap.Results {
		for unit, vs := range raw[snap.Results[i].Name] {
			snap.Results[i].Metrics[unit] = median(vs)
		}
	}
	return snap, sc.Err()
}

func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// primaryMetric picks the metric a regression is judged on: per-event cost
// when the benchmark reports it, the runner's ns/op otherwise.
func primaryMetric(r Result) (string, float64, bool) {
	for _, unit := range []string{"ns/event", "ns/op"} {
		if v, ok := r.Metrics[unit]; ok {
			return unit, v, true
		}
	}
	return "", 0, false
}

// compare diffs fresh against base, printing one line per benchmark, and
// returns the number of regressions beyond tolerance. Lower is better for
// the primary metrics, so a regression is fresh > base·(1+tolerance).
func compare(base, fresh Snapshot, tolerance float64, out io.Writer) int {
	baseByName := map[string]Result{}
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	regressions := 0
	seen := map[string]bool{}
	for _, fr := range fresh.Results {
		seen[fr.Name] = true
		br, ok := baseByName[fr.Name]
		if !ok {
			fmt.Fprintf(out, "new   %s (not in snapshot)\n", fr.Name)
			continue
		}
		unit, fv, ok := primaryMetric(fr)
		if !ok {
			fmt.Fprintf(out, "skip  %s (no primary metric in fresh run)\n", fr.Name)
			continue
		}
		bv, ok := br.Metrics[unit]
		if !ok {
			fmt.Fprintf(out, "skip  %s (snapshot lacks %s)\n", fr.Name, unit)
			continue
		}
		delta := (fv - bv) / bv
		switch {
		case bv <= 0:
			fmt.Fprintf(out, "skip  %s (non-positive baseline %s)\n", fr.Name, unit)
		case fv > bv*(1+tolerance):
			regressions++
			fmt.Fprintf(out, "REGR  %s %s %.4g -> %.4g (%+.1f%%)\n", fr.Name, unit, bv, fv, delta*100)
		default:
			fmt.Fprintf(out, "ok    %s %s %.4g -> %.4g (%+.1f%%)\n", fr.Name, unit, bv, fv, delta*100)
		}
	}
	for _, br := range base.Results {
		if !seen[br.Name] {
			fmt.Fprintf(out, "gone  %s (in snapshot, not in fresh run)\n", br.Name)
		}
	}
	return regressions
}

// trimProcSuffix drops the trailing -GOMAXPROCS that the bench runner
// appends when GOMAXPROCS > 1, so snapshots from different machines keep
// comparable names.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
