package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: stackless
cpu: Canned CPU @ 2.00GHz
BenchmarkSelectParallelStackless/events=100000/workers=1-4         	     100	   2503951 ns/op	        25.04 ns/event
BenchmarkSelectParallelStackless/events=100000/workers=4-4         	     100	   5021342 ns/op	        50.21 ns/event
BenchmarkSelectXML-4                                               	     100	   1500000 ns/op	       133.00 MB/s
PASS
ok  	stackless	1.234s
`

func TestParseBench(t *testing.T) {
	var stderr bytes.Buffer
	snap, err := parseBench(strings.NewReader(benchText), &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %s", stderr.String())
	}
	if snap.Context["goos"] != "linux" || snap.Context["cpu"] != "Canned CPU @ 2.00GHz" {
		t.Errorf("context = %v", snap.Context)
	}
	if len(snap.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkSelectParallelStackless/events=100000/workers=1" {
		t.Errorf("name = %q (proc suffix must be trimmed)", r.Name)
	}
	if r.Runs != 100 || r.Metrics["ns/op"] != 2503951 || r.Metrics["ns/event"] != 25.04 {
		t.Errorf("result = %+v", r)
	}
	if snap.Results[2].Metrics["MB/s"] != 133 {
		t.Errorf("MB/s = %v", snap.Results[2].Metrics)
	}
}

// TestParseBenchMergesRepeatedRuns: `go test -count N` emits the same
// benchmark name N times; the snapshot keeps one entry with the median
// value per metric and the summed run count.
func TestParseBenchMergesRepeatedRuns(t *testing.T) {
	input := `goos: linux
BenchmarkX/coded-4   100   2000 ns/op   20.00 ns/event   100 MB/s
BenchmarkX/coded-4   100   1800 ns/op   18.00 ns/event   133 MB/s
BenchmarkX/coded-4   100   2400 ns/op   24.00 ns/event   90 MB/s
`
	var stderr bytes.Buffer
	snap, err := parseBench(strings.NewReader(input), &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 {
		t.Fatalf("parsed %d results, want 1 merged", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Runs != 300 {
		t.Errorf("runs = %d, want 300", r.Runs)
	}
	if r.Metrics["ns/op"] != 2000 || r.Metrics["ns/event"] != 20 {
		t.Errorf("cost metrics not median-merged: %v", r.Metrics)
	}
	if r.Metrics["MB/s"] != 100 {
		t.Errorf("throughput not median-merged: %v", r.Metrics)
	}
}

func TestParseBenchSkipsMalformed(t *testing.T) {
	var stderr bytes.Buffer
	snap, err := parseBench(strings.NewReader("BenchmarkBroken 12\nBenchmarkAlsoBroken x 1 ns/op\n"), &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 0 {
		t.Errorf("malformed lines produced results: %+v", snap.Results)
	}
	if got := strings.Count(stderr.String(), "skipping malformed line"); got != 2 {
		t.Errorf("stderr reports %d skips, want 2:\n%s", got, stderr.String())
	}
}

// canned builds a snapshot with the given ns/event value per name.
func canned(values map[string]float64) Snapshot {
	s := Snapshot{Context: map[string]string{}}
	for name, v := range values {
		s.Results = append(s.Results, Result{Name: name, Runs: 100,
			Metrics: map[string]float64{"ns/op": v * 1000, "ns/event": v}})
	}
	return s
}

func TestCompareVerdicts(t *testing.T) {
	base := canned(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkGone": 40})
	fresh := canned(map[string]float64{
		"BenchmarkA":   110, // +10%: within 25% tolerance
		"BenchmarkB":   140, // +40%: regression
		"BenchmarkNew": 10,
	})
	var out bytes.Buffer
	if got := compare(base, fresh, 0.25, &out); got != 1 {
		t.Fatalf("compare found %d regressions, want 1:\n%s", got, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"ok    BenchmarkA ns/event 100 -> 110 (+10.0%)",
		"REGR  BenchmarkB ns/event 100 -> 140 (+40.0%)",
		"new   BenchmarkNew (not in snapshot)",
		"gone  BenchmarkGone (in snapshot, not in fresh run)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	base := canned(map[string]float64{"BenchmarkA": 100})
	fresh := canned(map[string]float64{"BenchmarkA": 10})
	var out bytes.Buffer
	if got := compare(base, fresh, 0.0, &out); got != 0 {
		t.Fatalf("10x improvement flagged as regression:\n%s", out.String())
	}
}

func TestCompareBoundaryExactTolerance(t *testing.T) {
	base := canned(map[string]float64{"BenchmarkA": 100})
	fresh := canned(map[string]float64{"BenchmarkA": 125})
	var out bytes.Buffer
	if got := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatalf("exactly-at-tolerance flagged as regression:\n%s", out.String())
	}
}

func TestComparePrefersNsPerEvent(t *testing.T) {
	// ns/op regressed wildly but ns/event held: per-event cost is the
	// contract (the runner's ns/op scales with the document size).
	base := Snapshot{Results: []Result{{Name: "BenchmarkA", Runs: 100,
		Metrics: map[string]float64{"ns/op": 1000, "ns/event": 50}}}}
	fresh := Snapshot{Results: []Result{{Name: "BenchmarkA", Runs: 100,
		Metrics: map[string]float64{"ns/op": 9000, "ns/event": 51}}}}
	var out bytes.Buffer
	if got := compare(base, fresh, 0.25, &out); got != 0 {
		t.Fatalf("ns/event within tolerance but flagged:\n%s", out.String())
	}
}

func TestRunJSONMode(t *testing.T) {
	var out, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(benchText), &out, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(snap.Results) != 3 {
		t.Errorf("round-trip lost results: %d", len(snap.Results))
	}
}

func TestRunCompareMode(t *testing.T) {
	dir := t.TempDir()
	snapFile := filepath.Join(dir, "base.json")
	var base bytes.Buffer
	if code := run(nil, strings.NewReader(benchText), &base, os.Stderr); code != 0 {
		t.Fatal("snapshot run failed")
	}
	if err := os.WriteFile(snapFile, base.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Same run against its own snapshot: no regression, exit 0.
	var out, stderr bytes.Buffer
	if code := run([]string{"-compare", snapFile}, strings.NewReader(benchText), &out, &stderr); code != 0 {
		t.Fatalf("self-compare exit %d:\n%s%s", 1, out.String(), stderr.String())
	}
	if !strings.Contains(out.String(), "ok: no regression") {
		t.Errorf("missing summary:\n%s", out.String())
	}

	// A 2x slower run must fail with exit 1.
	slow := strings.ReplaceAll(benchText, "25.04 ns/event", "55.00 ns/event")
	out.Reset()
	if code := run([]string{"-compare", snapFile, "-tolerance", "0.25"}, strings.NewReader(slow), &out, &stderr); code != 1 {
		t.Fatalf("regressed run exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL: 1 benchmark(s) regressed") {
		t.Errorf("missing FAIL summary:\n%s", out.String())
	}

	// Missing snapshot file: usage error, exit 2.
	if code := run([]string{"-compare", filepath.Join(dir, "absent.json")}, strings.NewReader(benchText), &out, &stderr); code != 2 {
		t.Fatalf("missing snapshot exited %d, want 2", code)
	}
}
