package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cannedProfile = `mode: atomic
stackless/internal/core/dra.go:10.2,12.3 3 7
stackless/internal/core/dra.go:14.2,14.9 1 0
stackless/internal/core/chunk.go:5.2,9.3 6 1
stackless/internal/parallel/pool.go:20.2,22.3 2 0
stackless/internal/parallel/pool.go:30.2,31.3 4 9
stackless/internal/obs/obs.go:8.2,8.9 5 3
`

func TestParseProfile(t *testing.T) {
	cov, err := parseProfile(strings.NewReader(cannedProfile))
	if err != nil {
		t.Fatal(err)
	}
	core := cov["stackless/internal/core"]
	if core.statements != 10 || core.covered != 9 {
		t.Errorf("core = %+v, want 9/10", core)
	}
	if got := core.Percent(); math.Abs(got-90) > 1e-9 {
		t.Errorf("core percent = %v, want 90", got)
	}
	par := cov["stackless/internal/parallel"]
	if par.statements != 6 || par.covered != 4 {
		t.Errorf("parallel = %+v, want 4/6", par)
	}
}

// TestParseProfileDeduplicates: ./... profiles repeat blocks, one copy per
// test binary; a block hit by any run is covered.
func TestParseProfileDeduplicates(t *testing.T) {
	profile := `mode: atomic
stackless/internal/core/dra.go:10.2,12.3 3 0
stackless/internal/core/dra.go:10.2,12.3 3 5
stackless/internal/core/dra.go:10.2,12.3 3 0
`
	cov, err := parseProfile(strings.NewReader(profile))
	if err != nil {
		t.Fatal(err)
	}
	core := cov["stackless/internal/core"]
	if core.statements != 3 || core.covered != 3 {
		t.Errorf("core = %+v, want 3/3 (block hit in one of three runs)", core)
	}
}

func TestParseProfileMalformed(t *testing.T) {
	for _, profile := range []string{
		"mode: set\nnot a profile line\n",
		"mode: set\nfile.go:1.2,3.4 x 1\n",
		"mode: set\nfile.go 1 1\n",
	} {
		if _, err := parseProfile(strings.NewReader(profile)); err == nil {
			t.Errorf("profile %q parsed without error", profile)
		}
	}
}

func TestReportGating(t *testing.T) {
	cov, err := parseProfile(strings.NewReader(cannedProfile))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// core is at 90%, parallel at 66.7%: gating both at 80 fails once.
	got := report(cov, []string{"stackless/internal/core", "stackless/internal/parallel"}, 80, &out)
	if got != 1 {
		t.Fatalf("failures = %d, want 1:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "! stackless/internal/parallel") {
		t.Errorf("parallel not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "* stackless/internal/core") {
		t.Errorf("core not marked as gated-and-passing:\n%s", out.String())
	}
	// Ungated packages are reported but never fail.
	if strings.Contains(out.String(), "! stackless/internal/obs") {
		t.Errorf("ungated package flagged:\n%s", out.String())
	}
}

func TestReportMissingGatedPackageFails(t *testing.T) {
	cov, err := parseProfile(strings.NewReader(cannedProfile))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if got := report(cov, []string{"stackless/internal/nosuch"}, 10, &out); got != 1 {
		t.Fatalf("missing gated package not failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from profile") {
		t.Errorf("missing-package line absent:\n%s", out.String())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "cover.out")
	if err := os.WriteFile(profile, []byte(cannedProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, stderr bytes.Buffer
	if code := run([]string{"-min", "60", "-packages", "stackless/internal/core,stackless/internal/parallel", profile},
		&out, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0:\n%s%s", code, out.String(), stderr.String())
	}
	if !strings.Contains(out.String(), "ok: coverage floor 60% met") {
		t.Errorf("missing ok summary:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-min", "95", "-packages", "stackless/internal/core", profile}, &out, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (core is at 90%%)", code)
	}
	if code := run([]string{"-min", "80", filepath.Join(dir, "absent.out")}, &out, &stderr); code != 2 {
		t.Fatalf("missing profile exited %d, want 2", code)
	}
	if code := run([]string{}, &out, &stderr); code != 2 {
		t.Fatalf("no arguments exited %d, want 2", code)
	}
}
