// Command covercheck reads a Go cover profile, aggregates per-package
// statement coverage, and enforces a minimum on selected packages — the
// tier-1 coverage gate of ci.sh.
//
// Usage:
//
//	go test -coverprofile=cover.out -coverpkg=./internal/core,./internal/parallel ./...
//	covercheck -min 80 -packages stackless/internal/core,stackless/internal/parallel cover.out
//
// The profile may contain the same block several times (one per test binary
// when the profile spans ./...); a statement counts as covered when any run
// hit it, matching `go tool cover -func` semantics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	minPct := fs.Float64("min", 80, "minimum statement coverage (percent) per gated package")
	pkgList := fs.String("packages", "", "comma-separated import paths to gate (default: every package in the profile)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "covercheck: exactly one cover profile argument required")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "covercheck:", err)
		return 2
	}
	defer f.Close()
	cov, err := parseProfile(f)
	if err != nil {
		fmt.Fprintln(stderr, "covercheck:", err)
		return 2
	}
	var gate []string
	if *pkgList != "" {
		gate = strings.Split(*pkgList, ",")
	}
	failures := report(cov, gate, *minPct, stdout)
	if failures > 0 {
		fmt.Fprintf(stdout, "FAIL: %d package(s) below %.0f%% statement coverage\n", failures, *minPct)
		return 1
	}
	fmt.Fprintf(stdout, "ok: coverage floor %.0f%% met\n", *minPct)
	return 0
}

// block identifies one source region of a profile line.
type block struct {
	file       string
	start, end string
}

// pkgCoverage is the aggregated statement counts of one package.
type pkgCoverage struct {
	statements int
	covered    int
}

// Percent returns the package's statement coverage; an empty package (no
// statements in the profile) counts as 0.
func (p pkgCoverage) Percent() float64 {
	if p.statements == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.statements)
}

// parseProfile reads a cover profile into per-package statement coverage,
// deduplicating repeated blocks (covered if any occurrence has count > 0).
func parseProfile(r io.Reader) (map[string]pkgCoverage, error) {
	type blockInfo struct {
		statements int
		hit        bool
	}
	blocks := map[block]blockInfo{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:start.col,end.col numStatements count
		fileRegion, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed profile line: %s", lineNo, line)
		}
		file, region, ok := cutLast(fileRegion, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed region: %s", lineNo, line)
		}
		start, end, ok := strings.Cut(region, ",")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed region: %s", lineNo, line)
		}
		stmtStr, countStr, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed counts: %s", lineNo, line)
		}
		statements, err := strconv.Atoi(stmtStr)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad statement count: %s", lineNo, line)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad hit count: %s", lineNo, line)
		}
		b := block{file: file, start: start, end: end}
		info := blocks[b]
		info.statements = statements
		info.hit = info.hit || count > 0
		blocks[b] = info
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	cov := map[string]pkgCoverage{}
	for b, info := range blocks {
		pkg := path.Dir(b.file)
		c := cov[pkg]
		c.statements += info.statements
		if info.hit {
			c.covered += info.statements
		}
		cov[pkg] = c
	}
	return cov, nil
}

// cutLast is strings.Cut on the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// report prints per-package coverage (all packages, sorted) and returns the
// number of gated packages below the floor. A gated package absent from the
// profile counts as a failure — a silently dropped package must not pass.
func report(cov map[string]pkgCoverage, gate []string, minPct float64, out io.Writer) int {
	pkgs := make([]string, 0, len(cov))
	for pkg := range cov {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	gated := map[string]bool{}
	for _, g := range gate {
		gated[strings.TrimSpace(g)] = true
	}
	failures := 0
	for _, pkg := range pkgs {
		pct := cov[pkg].Percent()
		mark := " "
		if len(gate) == 0 || gated[pkg] {
			if pct < minPct {
				failures++
				mark = "!"
			} else {
				mark = "*"
			}
		}
		fmt.Fprintf(out, "%s %-50s %6.1f%% (%d/%d statements)\n", mark, pkg, pct, cov[pkg].covered, cov[pkg].statements)
	}
	for _, g := range gate {
		if _, ok := cov[strings.TrimSpace(g)]; !ok {
			failures++
			fmt.Fprintf(out, "! %-50s missing from profile\n", strings.TrimSpace(g))
		}
	}
	return failures
}
