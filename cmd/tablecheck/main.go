// Command tablecheck verifies the compiled transition tables of every
// machine the repository constructs from the paper: static shape, closure,
// flag-hygiene and totality invariants first, then bounded equivalence of
// the batched kernels against the per-event string path over all
// well-formed trees within the configured bounds (see internal/tablecheck).
//
//	tablecheck              # verify the builtin machine corpus
//	tablecheck -json        # diagnostics in the shared diagjson schema
//	                        # (file carries the machine name, line is 0)
//	tablecheck -static      # skip the equivalence search
//	tablecheck -depth 5 -width 4 -alpha 4 -maxnodes 500000
//
// The exit status is 0 when every machine is clean, 1 when any diagnostic
// was reported, and 2 on usage or internal errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stackless/internal/core"
	"stackless/internal/diagjson"
	"stackless/internal/tablecheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// corpus is swappable so tests can exercise the failure paths with
// deliberately corrupted machines.
var corpus = tablecheck.Corpus

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tablecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	static := fs.Bool("static", false, "run only the static checks, skip the equivalence search")
	depth := fs.Int("depth", tablecheck.DefaultLimits.Depth, "maximum tree depth of the equivalence search")
	width := fs.Int("width", tablecheck.DefaultLimits.Width, "maximum children per node")
	alpha := fs.Int("alpha", tablecheck.DefaultLimits.Alpha, "maximum alphabet symbols enumerated")
	maxNodes := fs.Int("maxnodes", tablecheck.DefaultLimits.MaxNodes, "cap on joint states explored per machine")
	verbose := fs.Bool("v", false, "report explored joint-state counts")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "tablecheck: no arguments expected")
		return 2
	}
	lim := tablecheck.Limits{Depth: *depth, Width: *width, Alpha: *alpha, MaxNodes: *maxNodes}

	ms, err := corpus()
	if err != nil {
		fmt.Fprintln(stderr, "tablecheck:", err)
		return 2
	}
	var all []tablecheck.Diagnostic
	for _, m := range ms {
		var ds []tablecheck.Diagnostic
		explored := 0
		start := time.Now()
		if *static {
			ds, err = tablecheck.StaticVerify(m.Name, m.M)
		} else {
			ds, err = tablecheck.StaticVerify(m.Name, m.M)
			if err == nil && len(ds) == 0 {
				var eq *tablecheck.Diagnostic
				eq, explored, err = tablecheck.Equivalence(m.Name, m.M, lim)
				if eq != nil {
					ds = append(ds, *eq)
				}
				// Products: the generic search proves the product
				// self-consistent; the joint search proves it equivalent to
				// the tuple of its members.
				if p, ok := m.M.(*core.ProductDFA); ok && err == nil && eq == nil {
					var jexp int
					eq, jexp, err = tablecheck.EquivalenceProduct(m.Name, p, lim)
					explored += jexp
					if eq != nil {
						ds = append(ds, *eq)
					}
				}
				if err == nil && eq == nil {
					var post []tablecheck.Diagnostic
					post, err = tablecheck.StaticVerify(m.Name, m.M)
					ds = append(ds, post...)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "tablecheck: %s: %v\n", m.Name, err)
			return 2
		}
		all = append(all, ds...)
		if *jsonOut {
			continue
		}
		switch {
		case len(ds) > 0:
			fmt.Fprintf(stdout, "%s:\n", m.Name)
			for _, d := range ds {
				fmt.Fprintf(stdout, "  [%s] %s\n", d.Kind, d.Detail)
				if d.Counterexample != "" {
					fmt.Fprintf(stdout, "    counterexample: %s\n", d.Counterexample)
				}
			}
		case *verbose:
			fmt.Fprintf(stdout, "%s: clean (%d joint states, %s)\n", m.Name, explored, time.Since(start).Round(10*time.Microsecond))
		default:
			fmt.Fprintf(stdout, "%s: clean\n", m.Name)
		}
	}
	if *jsonOut {
		// Machines are logical units, not files with line numbers: the
		// machine name stands in for the file and the line stays 0.
		records := make([]diagjson.Record, 0, len(all))
		for _, d := range all {
			msg := d.Detail
			if d.Counterexample != "" {
				msg += "; counterexample: " + d.Counterexample
			}
			records = append(records, diagjson.Record{
				File:     d.Machine,
				Analyzer: "tablecheck",
				Kind:     string(d.Kind),
				Message:  msg,
			})
		}
		if err := diagjson.Write(stdout, records); err != nil {
			fmt.Fprintln(stderr, "tablecheck:", err)
			return 2
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}
