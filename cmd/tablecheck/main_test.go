package main

import (
	"encoding/json"
	"strings"
	"testing"

	"stackless/internal/tablecheck"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, err strings.Builder
	code = run(args, &out, &err)
	return code, out.String(), err.String()
}

// smallBounds keeps the per-machine equivalence search inside unit-test
// time; cmd invocations without flags use the full DefaultLimits.
var smallBounds = []string{"-depth", "2", "-width", "2", "-alpha", "2", "-maxnodes", "4000"}

func TestCorpusClean(t *testing.T) {
	args := smallBounds
	if testing.Short() {
		args = append([]string{"-static"}, args...)
	}
	code, out, stderr := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("exit %d on corpus:\n%s%s", code, out, stderr)
	}
	for _, want := range []string{"tagdfa/markup: clean", "stackless/term: clean", "dra/example27: clean", "synopsis/al: clean"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestVerboseReportsExplored(t *testing.T) {
	code, out, _ := runCmd(t, append([]string{"-v"}, smallBounds...)...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "joint states") {
		t.Errorf("-v output lacks explored counts:\n%s", out)
	}
}

// withCorruptCorpus swaps in a corpus holding one deliberately broken
// machine for the duration of the test.
func withCorruptCorpus(t *testing.T, corrupt func(m tablecheck.Machine) bool) {
	t.Helper()
	orig := corpus
	t.Cleanup(func() { corpus = orig })
	corpus = func() ([]tablecheck.Machine, error) {
		ms, err := orig()
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if corrupt(m) {
				return []tablecheck.Machine{m}, nil
			}
		}
		t.Fatal("no machine matched the corruption predicate")
		return nil, nil
	}
}

func TestCorruptTableExitsNonzero(t *testing.T) {
	withCorruptCorpus(t, func(m tablecheck.Machine) bool {
		d, ok := m.M.(interface {
			CompiledTable() ([]int32, []bool, int32, int32)
		})
		if !ok {
			return false
		}
		tab, _, _, dead := d.CompiledTable()
		tab[0] = dead + 5
		return true
	})
	code, out, _ := runCmd(t, smallBounds...)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "[closure]") {
		t.Errorf("output lacks the closure diagnostic:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	withCorruptCorpus(t, func(m tablecheck.Machine) bool {
		d, ok := m.M.(interface {
			CompiledTable() ([]int32, []bool, int32, int32)
		})
		if !ok {
			return false
		}
		tab, _, _, dead := d.CompiledTable()
		tab[0] = dead + 5
		return true
	})
	code, out, _ := runCmd(t, append([]string{"-json"}, smallBounds...)...)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	// The output follows the shared diagjson schema: exactly five keys,
	// with the machine name standing in for the file.
	var ds []map[string]any
	if err := json.Unmarshal([]byte(out), &ds); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(ds) == 0 || ds[0]["kind"] != string(tablecheck.KindClosure) {
		t.Fatalf("unexpected diagnostics: %v", ds)
	}
	for _, r := range ds {
		for _, key := range []string{"file", "line", "analyzer", "kind", "message"} {
			if _, ok := r[key]; !ok {
				t.Errorf("record missing %q: %v", key, r)
			}
		}
		if len(r) != 5 {
			t.Errorf("record has %d keys, want exactly 5: %v", len(r), r)
		}
		if r["analyzer"] != "tablecheck" || r["file"] == "" || r["line"] != float64(0) {
			t.Errorf("unexpected analyzer/file/line: %v", r)
		}
	}
}

func TestJSONCleanEmitsEmptyArray(t *testing.T) {
	code, out, _ := runCmd(t, append([]string{"-json", "-static"}, smallBounds...)...)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	var ds []map[string]any
	if err := json.Unmarshal([]byte(out), &ds); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(ds) != 0 {
		t.Errorf("clean corpus emitted diagnostics: %v", ds)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, stderr := runCmd(t, "-nope"); code != 2 || stderr == "" {
		t.Errorf("bad flag: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCmd(t, "positional"); code != 2 || !strings.Contains(stderr, "no arguments") {
		t.Errorf("positional arg: exit %d, stderr %q", code, stderr)
	}
}
