GO ?= go

.PHONY: ci test race vet fmt build lint lint-tables bce allocgate fuzz fuzz-smoke bench bench-coded bench-multi bench-earliest bench-stack bench-coded-gate bench-stack-gate clean

# timed runs one lint gate and prints its wall-clock seconds, so a gate
# that quietly grows past the lint budget (90s total) is visible in every
# run. $(1) is the label, $(2) the command.
define timed
	@start=$$(date +%s); $(2); rc=$$?; end=$$(date +%s); \
	echo "[lint] $(1): $$((end - start))s"; exit $$rc
endef

ci: ## full tier-1 gate: fmt + vet + build + test + race
	./ci.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# All static-analysis layers: dralint over the paper's automata tables,
# treelint over the Go source (including the flow-sensitive
# allocfree/lifecycle/hotlock analyzers), tablecheck over the compiled
# transition tables, the bounds-check-elimination gate and the
# escape-analysis allocation gate over the plain kernels. treelint is
# built once into bin/ and driven by go vet so test files are analyzed too
# (and results land in the build cache). Each gate prints its wall-clock
# time; the whole lint target must stay under 90s.
lint: lint-tables bce allocgate
	$(call timed,dralint,$(GO) run ./cmd/dralint)
	$(GO) build -o bin/treelint ./cmd/treelint
	$(call timed,treelint,$(GO) vet -vettool=$(CURDIR)/bin/treelint ./...)

# Verify every compiled machine the repo constructs: table shape, closure,
# flag hygiene, totality, and bounded equivalence against the uncompiled
# machine (internal/tablecheck).
lint-tables:
	$(call timed,tablecheck,$(GO) run ./cmd/tablecheck)

# Fail if any //treelint:plain batch kernel in internal/core or
# internal/encoding retains a compiler-inserted bounds check.
bce:
	$(call timed,bcegate,$(GO) run ./cmd/bcegate)

# Fail if any //treelint:plain kernel body in internal/core or
# internal/encoding reaches the heap (compiler escape analysis, -m -m),
# modulo //treelint:partial-annotated lines.
allocgate:
	$(call timed,allocgate,$(GO) run ./cmd/allocgate)

fmt:
	gofmt -l .

# Short fuzz passes over every fuzz target; CI-sized, not a campaign.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dralint/
	$(GO) test -run '^$$' -fuzz FuzzDRALint -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzXMLScanner -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzTermScanner -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzJSONSource -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzParallelSplit -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzCodedVsString -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzStackCodedVsString -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzEarliestVsCurrent -fuzztime $(FUZZTIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzTablecheckRoundtrip -fuzztime $(FUZZTIME) ./internal/tablecheck/
	$(GO) test -run '^$$' -fuzz FuzzProductVsFanout -fuzztime $(FUZZTIME) ./internal/product/

# CI-sized smoke pass (see ci.sh): the chunk-parallel, coded-pipeline,
# pushdown-vs-old-machine and earliest-emission differential fuzzers, the
# three event-source fuzzers, the tablecheck roundtrip fuzzer (seeded with
# mined equivalence counterexamples), and the multi-query product-vs-fanout
# differential fuzzer, 10s each.
SMOKETIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParallelSplit -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzCodedVsString -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzStackCodedVsString -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzEarliestVsCurrent -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzXMLScanner -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzTermScanner -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzJSONSource -fuzztime $(SMOKETIME) ./internal/encoding/
	$(GO) test -run '^$$' -fuzz FuzzTablecheckRoundtrip -fuzztime $(SMOKETIME) ./internal/tablecheck/
	$(GO) test -run '^$$' -fuzz FuzzProductVsFanout -fuzztime $(SMOKETIME) ./internal/product/

# Regenerate the committed chunk-parallel benchmark snapshot. The numbers
# are machine-dependent; commit them together with the cpu context line.
BENCHTIME ?= 100x
BENCHCOUNT ?= 10
TOLERANCE ?= 0.02
bench:
	$(GO) test -run '^$$' -bench SelectParallel -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_parallel.json

# Regenerate the compiled-pipeline benchmark snapshot: every evaluator
# family through the string and coded Select paths on the same documents.
bench-coded:
	for i in $$(seq $(BENCHCOUNT)); do $(GO) test -run '^$$' -bench SelectCoded -benchtime $(BENCHTIME) . || exit 1; done | $(GO) run ./cmd/benchjson > BENCH_coded.json

# Regenerate the multi-query benchmark snapshot: the merged product
# automaton against the fan-out it replaces at 8/64/512 queries.
bench-multi:
	$(GO) test -run '^$$' -bench MultiQueryProduct -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_multi.json

# Regenerate the earliest-emission benchmark snapshot: the per-event
# latency contract against the string and coded drivers, plus the
# early-exit payoff case.
bench-earliest:
	$(GO) test -run '^$$' -bench SelectEarliest -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_earliest.json

# Regenerate the pushdown-fallback benchmark snapshot: the rebuilt pooled
# machine (string and coded paths) against the legacy per-event baseline
# and the stackless coded path it falls back from. The acceptance contract
# (EXPERIMENTS.md): coded ≤ 2× stackless-coded ns/event per document.
bench-stack:
	for i in $$(seq $(BENCHCOUNT)); do $(GO) test -run '^$$' -bench SelectStack -benchtime $(BENCHTIME) . || exit 1; done | $(GO) run ./cmd/benchjson > BENCH_stack.json

# Gate twin of bench-stack: the pushdown paths must stay within TOLERANCE
# of the committed snapshot (interleaved median-of-N, see bench-coded-gate).
bench-stack-gate:
	for i in $$(seq $(BENCHCOUNT)); do $(GO) test -run '^$$' -bench SelectStack -benchtime $(BENCHTIME) . || exit 1; done | $(GO) run ./cmd/benchjson -compare BENCH_stack.json -tolerance $(TOLERANCE)

# Gate for the earliest work: the default (non-earliest) coded hot path
# must stay within TOLERANCE (default 2%) ns/event of the committed
# snapshot — a contract that assumes a quiet machine. Both sides run
# the whole suite BENCHCOUNT times in separate invocations — interleaving
# decorrelates scheduler jitter, which hits back-to-back -count repeats
# of one benchmark together — and benchjson takes the per-metric median.
bench-coded-gate:
	for i in $$(seq $(BENCHCOUNT)); do $(GO) test -run '^$$' -bench SelectCoded -benchtime $(BENCHTIME) . || exit 1; done | $(GO) run ./cmd/benchjson -compare BENCH_coded.json -tolerance $(TOLERANCE)

clean:
	rm -f dralint classify streamq
	rm -rf bin
