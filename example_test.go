package stackless_test

import (
	"fmt"
	"strings"

	"stackless"
)

// The headline use case: compile an XPath query, let the engine pick the
// cheapest machine the characterization theorems allow, and stream.
func ExampleQuery_SelectXML() {
	q, err := stackless.CompileXPath("/a//b", []string{"a", "b", "c"})
	if err != nil {
		panic(err)
	}
	doc := "<a><b/><c><b/></c></a>"
	stats, err := q.SelectXML(strings.NewReader(doc), stackless.Options{}, func(m stackless.Match) {
		fmt.Printf("match pos=%d depth=%d\n", m.Pos, m.Depth)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", stats.Strategy)
	// Output:
	// match pos=1 depth=2
	// match pos=3 depth=3
	// strategy: registerless
}

// Classification reproduces Example 2.12: /a/b is stackless but not
// registerless.
func ExampleQuery_Classify() {
	q, _ := stackless.CompileXPath("/a/b", []string{"a", "b", "c"})
	c := q.Classify()
	fmt.Println("registerless:", c.Registerless)
	fmt.Println("stackless:", c.StacklessQuery)
	// Output:
	// registerless: false
	// stackless: true
}

// Tree languages: EL asks for some matching branch, AL for all branches
// (weak validation).
func ExampleQuery_RecognizeAL() {
	q, _ := stackless.CompileRegex("ab*", []string{"a", "b"})
	ok, _, _ := q.RecognizeAL(strings.NewReader("<a><b/><b><b/></b></a>"), stackless.Options{})
	fmt.Println("all branches in ab*:", ok)
	// Output:
	// all branches in ab*: true
}

// JSON documents stream under the term encoding; the blind classes of
// Appendix B decide what is possible.
func ExampleQuery_SelectJSON() {
	q, _ := stackless.CompileJSONPath("$..'title'", []string{"$", "book", "item", "title"})
	doc := `{"book": [{"title": 1}, {"title": 2}]}`
	stats, _ := q.SelectJSON(strings.NewReader(doc), stackless.Options{}, nil)
	fmt.Println("matches:", stats.Matches, "strategy:", stats.Strategy)
	// Output:
	// matches: 2 strategy: registerless
}

// Explain narrates the lower-bound witnesses for queries outside a class.
func ExampleQuery_Explain() {
	q, _ := stackless.CompileXPath("//a/b", []string{"a", "b", "c"})
	why := q.Explain()
	fmt.Println("explanations:", len(why) > 0)
	// Output:
	// explanations: true
}

// Several queries can share one parsing pass.
func ExampleMultiQuery() {
	q1, _ := stackless.CompileXPath("/a//b", []string{"a", "b", "c"})
	q2, _ := stackless.CompileXPath("//c", []string{"a", "b", "c"})
	mq, _ := stackless.NewMultiQuery(q1, q2)
	doc := "<a><b/><c><b/></c></a>"
	stats, _ := mq.SelectXML(strings.NewReader(doc), stackless.Options{}, nil)
	fmt.Println("matches:", stats.Matches)
	// Output:
	// matches: [2 1]
}
